"""The machine/memory spec grammar and file loaders.

One compact grammar describes every simulatable machine::

    spec    := PRESET-NAME | KIND | KIND "(" params ")"
    params  := KEY "=" VALUE ("," KEY "=" VALUE)*

``"dkip(llib=4096,cp=OOO-60)"`` parses through the ``dkip`` kind's
``parse`` hook into a :class:`~repro.sim.config.DkipConfig`;
``"R10-256"`` resolves through the preset table; bare ``"kilo"`` is the
kind with all defaults.  Parameter grammars are owned by the kinds
themselves (see each constructor module); the surrounding syntax
(:func:`split_specs` / :func:`parse_spec_string`) lives in
:mod:`repro.grammar`, shared with the workload layer, and is re-exported
here.  This module owns the preset lookup, the memory-system grammar,
and TOML/JSON scenario-file loading.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Mapping

from repro.grammar import (  # noqa: F401 - split/parse re-exported API
    INF_WORDS,
    SpecError,
    parse_count,
    parse_size,
    parse_spec_string,
    reject_unknown,
    split_specs,
)
from repro.machines.presets import get_preset
from repro.machines.registry import ensure_builtin_kinds, get_kind
from repro.memory.configs import DEFAULT_MEMORY, TABLE1_CONFIGS, MemoryConfig

MEMORY_GRAMMAR = (
    "mem(lat=N|inf, l2=SIZE[K|M]|inf, l2lat=N, l1=SIZE[K|M]|inf, "
    "l1lat=N, line=N, name=STR) or a Table-1 name (L1-2, L2-11, L2-21, "
    "MEM-100, MEM-400, MEM-1000) or 'default'"
)


def parse_machine(spec: str):
    """Parse a machine spec — preset name, bare kind, or ``kind(...)`` —
    into its config dataclass."""
    text = spec.strip()
    if "(" not in text:
        # Kind modules register their presets at import time, so the
        # lazily-imported kinds must exist before the preset lookup.
        ensure_builtin_kinds()
        preset = get_preset(text)
        if preset is not None:
            return preset.config
    kind_name, params = parse_spec_string(text)
    try:
        kind = get_kind(kind_name)
    except ValueError as error:
        raise SpecError(f"{error}; or use a preset name (see 'machines')") from None
    try:
        return kind.parse(params)
    except SpecError:
        raise
    except ValueError as error:
        raise SpecError(f"{kind.name}: {error}; grammar: {kind.grammar}") from None


def parse_machines(text: str) -> list:
    """Parse a comma-separated list of machine specs."""
    return [parse_machine(spec) for spec in split_specs(text)]


def apply_params(spec: str, extra: Mapping[str, str]) -> str:
    """Re-render *spec* with *extra* parameters merged in (overriding).

    Sweep axes use this to cross one base machine spec with axis values:
    ``apply_params("dkip(cp=INO)", {"llib": "4096"})`` →
    ``"dkip(cp=INO,llib=4096)"``.  Preset names resolve through their
    equivalent spec string first, so axes apply to presets too.
    """
    text = spec.strip()
    if "(" not in text:
        ensure_builtin_kinds()
        preset = get_preset(text)
        if preset is not None:
            text = preset.spec
    kind, params = parse_spec_string(text)
    params.update({str(k): str(v) for k, v in extra.items()})
    if not params:
        return kind
    body = ",".join(f"{key}={value}" for key, value in params.items())
    return f"{kind}({body})"


# ----------------------------------------------------------------------
# Memory-system specs
# ----------------------------------------------------------------------

_MEMORY_KEYS = frozenset({"lat", "l2", "l2lat", "l1", "l1lat", "line", "name"})


def parse_memory(spec: str) -> MemoryConfig:
    """Parse a memory spec: a Table-1 name, ``default``, or ``mem(...)``.

    Single-knob specs reuse the established naming helpers so e.g.
    ``mem(lat=800)`` fingerprints identically to
    ``DEFAULT_MEMORY.with_mem_latency(800)``.
    """
    text = spec.strip()
    if "(" not in text:
        if text.lower() == "default":
            return DEFAULT_MEMORY
        for name, config in TABLE1_CONFIGS.items():
            if name.lower() == text.lower():
                return config
        raise SpecError(
            f"unknown memory system {spec!r}; grammar: {MEMORY_GRAMMAR}"
        )
    kind, params = parse_spec_string(text)
    if kind.lower() not in ("mem", "memory"):
        raise SpecError(
            f"unknown memory spec kind {kind!r}; grammar: {MEMORY_GRAMMAR}"
        )
    reject_unknown("mem", params, _MEMORY_KEYS, MEMORY_GRAMMAR)
    keys = set(params) - {"name"}
    if keys == {"lat"} and params["lat"].strip().lower() not in INF_WORDS:
        config = DEFAULT_MEMORY.with_mem_latency(
            parse_count("mem", "lat", params["lat"])
        )
    elif keys == {"l2"}:
        size = parse_size("mem", "l2", params["l2"])
        if size is None:
            config = replace(DEFAULT_MEMORY, name="default-l2-inf", l2_size=None)
        else:
            config = DEFAULT_MEMORY.with_l2_size(size)
    else:
        config = DEFAULT_MEMORY
        if "l1" in params:
            config = replace(config, l1_size=parse_size("mem", "l1", params["l1"]))
        if "l1lat" in params:
            config = replace(
                config, l1_latency=parse_count("mem", "l1lat", params["l1lat"])
            )
        if "l2" in params:
            config = replace(config, l2_size=parse_size("mem", "l2", params["l2"]))
        if "l2lat" in params:
            config = replace(
                config, l2_latency=parse_count("mem", "l2lat", params["l2lat"])
            )
        if "lat" in params:
            lat = params["lat"]
            mem_latency = (
                None
                if lat.strip().lower() in INF_WORDS
                else parse_count("mem", "lat", lat)
            )
            config = replace(config, mem_latency=mem_latency)
        if "line" in params:
            config = replace(
                config, line_size=parse_count("mem", "line", params["line"])
            )
        parts = [f"{key}={params[key]}" for key in params if key != "name"]
        config = replace(config, name=f"mem[{','.join(parts)}]")
    if "name" in params:
        config = replace(config, name=params["name"])
    return config


def parse_memories(text: str) -> list[MemoryConfig]:
    """Parse a comma-separated list of memory specs."""
    return [parse_memory(spec) for spec in split_specs(text)]


# ----------------------------------------------------------------------
# Scenario files (TOML/JSON)
# ----------------------------------------------------------------------


def load_spec_file(path: str | Path) -> dict:
    """Load a sweep/scenario description from a ``.toml`` or ``.json``
    file into a plain mapping (the sweep engine validates the contents).

    TOML needs Python ≥ 3.11 (stdlib ``tomllib``); on older
    interpreters use the JSON form, which is always available.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".json":
        data = json.loads(text)
    elif path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:  # Python 3.10: stdlib tomllib is 3.11+
            raise SpecError(
                f"cannot load {path}: TOML support needs Python >= 3.11 "
                "(tomllib); use the JSON scenario format instead"
            ) from None
        data = tomllib.loads(text)
    else:
        raise SpecError(
            f"unrecognized scenario file suffix {path.suffix!r}; "
            "expected .toml or .json"
        )
    if not isinstance(data, dict):
        raise SpecError(f"scenario file {path} must contain a table/object")
    return data
