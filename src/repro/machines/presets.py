"""Named machine presets: the paper's machine zoo as data.

Each preset binds a public name (the names used in the paper's figures)
to a config instance, the kind that builds it, the equivalent spec
string, and the paper table/figure the parameters come from.  The spec
string is load-bearing: sweep axes apply extra parameters by re-parsing
it, so every preset is reachable from the spec grammar and a preset and
its spec twin fingerprint identically (enforced by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.config import (
    DKIP_2048,
    KILO_1024,
    LimitMachine,
    R10_64,
    R10_256,
    RunaheadConfig,
)


@dataclass(frozen=True)
class MachinePreset:
    """One named machine with its paper provenance."""

    name: str
    config: Any
    kind: str
    #: Spec-grammar string that parses to exactly ``config``.
    spec: str
    #: Where the parameters come from in the paper.
    provenance: str


#: The named machines, in figure order.  Keyed by lowercase name;
#: :func:`get_preset` resolves case-insensitively.
PRESETS: dict[str, MachinePreset] = {
    preset.name.lower(): preset
    for preset in (
        MachinePreset(
            "R10-64",
            R10_64,
            "r10",
            "r10(rob=64)",
            "Table 2 / Figure 9 — MIPS R10000-like baseline "
            "(64-entry ROB, 40-entry queues)",
        ),
        MachinePreset(
            "R10-256",
            R10_256,
            "r10",
            "r10(rob=256,iq=160)",
            "Figure 9 — 'futuristic' R10000 (256-entry ROB, 160-entry queues)",
        ),
        MachinePreset(
            "KILO-1024",
            KILO_1024,
            "kilo",
            "kilo(sliq=1024)",
            "Figure 9 / reference [9] — pseudo-ROB 64 + 1024-entry "
            "out-of-order SLIQ",
        ),
        MachinePreset(
            "D-KIP-2048",
            DKIP_2048,
            "dkip",
            "dkip(llib=2048)",
            "Tables 2-3 / Figure 9 — baseline D-KIP, two 2048-entry LLIBs",
        ),
        MachinePreset(
            "limit-rob-inf",
            LimitMachine(),
            "limit",
            "limit(rob=inf)",
            "Figures 1-3 — idealized core, stalls only from the ROB "
            "(unlimited here)",
        ),
        MachinePreset(
            "runahead-64",
            RunaheadConfig(),
            "runahead",
            "runahead(rob=64)",
            "design study / reference [24] — runahead execution on the "
            "R10-64 core",
        ),
    )
}


def get_preset(name: str) -> MachinePreset | None:
    """The preset registered under *name* (case-insensitive), or None."""
    return PRESETS.get(name.strip().lower())


def register_preset(preset: MachinePreset) -> MachinePreset:
    """Add a named machine (overwrites an existing preset of that name)."""
    PRESETS[preset.name.lower()] = preset
    return preset
