"""Declarative machine descriptions: kinds, specs, and named presets.

This package turns the machine zoo into data.  Every simulatable
machine — the paper's four models and the idealized limit core alike —
is constructed through a single registry of named machine *kinds*
(:mod:`repro.machines.registry`), each exposing ``parse`` (spec string →
config dataclass) and ``build`` (config → simulator instance).  A
compact grammar (:mod:`repro.machines.spec`) makes machines writable on
a command line (``"dkip(llib=4096,cp=OOO-60)"``), the preset table
(:mod:`repro.machines.presets`) names the paper's exact configurations,
and TOML/JSON scenario files describe whole sweeps.

The config dataclasses themselves still live in :mod:`repro.sim.config`;
their fingerprints — and therefore every result-store key — are
untouched by this layer.  Kinds self-register from the modules that own
their constructors (``repro.baselines.*``, ``repro.core.dkip``).
"""

from repro.machines.params import SpecError
from repro.machines.presets import PRESETS, MachinePreset, get_preset, register_preset
from repro.machines.registry import (
    MachineDescription,
    MachineKind,
    build_machine,
    ensure_builtin_kinds,
    get_kind,
    kind_of,
    machine_kinds,
    register_machine,
)
from repro.machines.spec import (
    MEMORY_GRAMMAR,
    apply_params,
    load_spec_file,
    parse_machine,
    parse_machines,
    parse_memories,
    parse_memory,
    split_specs,
)

__all__ = [
    "MEMORY_GRAMMAR",
    "MachineDescription",
    "MachineKind",
    "MachinePreset",
    "PRESETS",
    "SpecError",
    "apply_params",
    "build_machine",
    "ensure_builtin_kinds",
    "get_kind",
    "get_preset",
    "kind_of",
    "load_spec_file",
    "machine_kinds",
    "parse_machine",
    "parse_machines",
    "parse_memories",
    "parse_memory",
    "register_machine",
    "register_preset",
    "split_specs",
]
