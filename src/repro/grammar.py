"""The shared spec-grammar core: syntax and value coercion.

One compact grammar describes every declaratively-specified object in
the repository — machines (``"dkip(llib=4096,cp=OOO-60)"``), memory
systems (``"mem(lat=800)"``) and workloads (``"synth(chase=8)"``,
``"trace(file=foo.trc.gz)"``)::

    spec    := KIND | KIND "(" params ")"
    params  := KEY "=" VALUE ("," KEY "=" VALUE)*

This module owns the *syntax* (:func:`split_specs`,
:func:`parse_spec_string`) and the *value coercion* helpers
(:func:`parse_count`, :func:`parse_size`, :func:`parse_fraction`, ...)
that the kind-specific ``parse`` hooks share.  It deliberately imports
nothing from the rest of the package so any layer — machines,
workloads, memory, trace — can use it without import cycles.
:mod:`repro.machines.params` and :mod:`repro.machines.spec` re-export
everything here for backwards compatibility.
"""

from __future__ import annotations

import re
from typing import Mapping

#: Multipliers for the size suffixes accepted by :func:`parse_size`.
_SIZE_SUFFIXES = {"k": 1024, "m": 1024 * 1024}

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})

#: Spellings of *unlimited/absent* accepted wherever a size or bound may
#: be infinite (shared by the memory grammar in :mod:`repro.machines.spec`).
INF_WORDS = frozenset({"inf", "infinite", "none", "unlimited"})
_INF_WORDS = INF_WORDS

_SPEC_RE = re.compile(r"\s*([A-Za-z_][\w.-]*)\s*(?:\((.*)\))?\s*\Z", re.S)


class SpecError(ValueError):
    """A machine/memory/workload spec string failed to parse or validate."""


# ----------------------------------------------------------------------
# Syntax
# ----------------------------------------------------------------------


def split_specs(text: str) -> list[str]:
    """Split a comma-separated spec list at paren depth zero, so
    ``"r10,dkip(llib=4096,cp=OOO-60)"`` yields two specs, not three."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise SpecError(f"unbalanced parentheses in {text!r}")
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise SpecError(f"unbalanced parentheses in {text!r}")
    parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def parse_spec_string(spec: str) -> tuple[str, dict[str, str]]:
    """Split ``"kind(k=v,...)"`` into ``(kind, params)`` without
    interpreting the values."""
    match = _SPEC_RE.match(spec)
    if match is None or spec.count("(") != spec.count(")"):
        raise SpecError(
            f"malformed spec {spec!r}; expected KIND or KIND(key=value,...)"
        )
    kind, body = match.group(1), match.group(2)
    params: dict[str, str] = {}
    for item in split_specs(body or ""):
        key, sep, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not key or not value:
            raise SpecError(
                f"malformed parameter {item!r} in {spec!r}; expected key=value"
            )
        if key in params:
            raise SpecError(f"duplicate parameter {key!r} in {spec!r}")
        params[key] = value
    return kind, params


def render_spec(kind: str, params: Mapping[str, object]) -> str:
    """The inverse of :func:`parse_spec_string`: ``kind(k=v,...)``, or
    the bare kind when *params* is empty."""
    if not params:
        return kind
    body = ",".join(f"{key}={value}" for key, value in params.items())
    return f"{kind}({body})"


# ----------------------------------------------------------------------
# Value coercion
# ----------------------------------------------------------------------


def reject_unknown(
    kind: str, params: Mapping[str, str], allowed: frozenset[str] | set[str],
    grammar: str,
) -> None:
    """Raise :class:`SpecError` if *params* contains keys outside *allowed*."""
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise SpecError(
            f"unknown {kind!r} parameter(s) {', '.join(unknown)}; "
            f"grammar: {grammar}"
        )


def parse_count(kind: str, key: str, value: str) -> int:
    """A strictly positive integer (``"40"``, ``"2_048"``)."""
    try:
        count = int(value)
    except ValueError:
        count = None
    if count is None or count <= 0:
        raise SpecError(
            f"{kind}: parameter {key}={value!r} must be a positive integer"
        )
    return count


def parse_nonneg(kind: str, key: str, value: str) -> int:
    """A non-negative integer (``"0"`` allowed — e.g. ``chase=0``)."""
    try:
        count = int(value)
    except ValueError:
        count = None
    if count is None or count < 0:
        raise SpecError(
            f"{kind}: parameter {key}={value!r} must be a non-negative integer"
        )
    return count


def parse_count_or_inf(kind: str, key: str, value: str) -> int | None:
    """A positive integer, or ``inf``/``none`` meaning *unlimited*."""
    if value.strip().lower() in _INF_WORDS:
        return None
    return parse_count(kind, key, value)


def parse_size(kind: str, key: str, value: str) -> int | None:
    """A byte size with an optional ``K``/``M`` suffix, or ``inf``.

    ``"512K"`` → 524288, ``"1M"`` → 1048576, ``"inf"`` → ``None``.
    """
    text = value.strip().lower()
    if text in _INF_WORDS:
        return None
    multiplier = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        multiplier = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        size = int(text)
    except ValueError:
        size = None
    if size is None or size <= 0:
        raise SpecError(
            f"{kind}: parameter {key}={value!r} must be a positive size "
            "(optionally suffixed K or M) or 'inf'"
        )
    return size * multiplier


def parse_fraction(kind: str, key: str, value: str) -> float:
    """A probability/ratio in ``[0, 1]`` (``"0.05"``, ``"0"``, ``"1"``)."""
    try:
        fraction = float(value)
    except ValueError:
        fraction = None
    if fraction is None or not 0.0 <= fraction <= 1.0:
        raise SpecError(
            f"{kind}: parameter {key}={value!r} must be a fraction in [0, 1]"
        )
    return fraction


def parse_flag(kind: str, key: str, value: str) -> bool:
    """A boolean flag: on/off, true/false, yes/no, 1/0."""
    text = value.strip().lower()
    if text in _TRUE_WORDS:
        return True
    if text in _FALSE_WORDS:
        return False
    raise SpecError(
        f"{kind}: parameter {key}={value!r} must be a boolean "
        "(on/off, true/false, yes/no, 1/0)"
    )


def format_size(size: int) -> str:
    """Render a byte count the way :func:`parse_size` reads it back:
    ``1048576`` → ``"1M"``, ``65536`` → ``"64K"``, ``100`` → ``"100"``."""
    if size % (1024 * 1024) == 0 and size:
        return f"{size // (1024 * 1024)}M"
    if size % 1024 == 0 and size:
        return f"{size // 1024}K"
    return str(size)


def format_value(value: object) -> str:
    """Render a trait value into canonical spec text that round-trips:
    booleans as on/off, floats via ``repr`` (exact), everything else
    via ``str``."""
    if value is True:
        return "on"
    if value is False:
        return "off"
    if isinstance(value, float):
        return repr(value)
    return str(value)
