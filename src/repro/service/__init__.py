"""The sweep service: many submitters, one sharded result store.

The serving layer over the experiment stack: clients submit declarative
sweeps (:class:`~repro.experiments.sweep.SweepSpec` mappings) as
content-addressed jobs into a spool directory, a scheduler expands each
grid into store-fingerprinted cells and shards them as claimable
tickets, and N workers (local processes, or any host sharing the spool)
execute cells and stream results into the shared
:class:`~repro.store.ResultStore`.

The store's fingerprints are the idempotency keys throughout: a cell is
"done" exactly when its validated entry exists, so worker death,
duplicate dispatch, scheduler restarts and duplicate submissions all
resolve to the same recovery — requeue the missing fingerprints.  See
``dkip-experiments serve``/``submit``/``status``/``results`` for the
CLI surface and ARCHITECTURE.md for the dataflow diagram.
"""

from repro.service.client import (
    build_job,
    collect_results,
    format_status,
    job_status,
    submit_job,
    wait_for_job,
)
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, Job, JobCell, job_id_for
from repro.service.queue import ServiceQueue
from repro.service.scheduler import Scheduler
from repro.service.worker import ServiceWorker, worker_main

__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "Job",
    "JobCell",
    "Scheduler",
    "ServiceQueue",
    "ServiceWorker",
    "build_job",
    "collect_results",
    "format_status",
    "job_id_for",
    "job_status",
    "submit_job",
    "wait_for_job",
    "worker_main",
]
