"""The sweep-service worker: claim a ticket, simulate, stream to store.

A worker is deliberately dumb: it claims one ticket, re-executes each
cell from the key payload recorded in the job file (the same payload
``cache verify`` replays, so service results are bit-identical to a
serial :func:`~repro.experiments.common.run_cells` pass), writes every
completed cell straight into the shared :class:`ResultStore`, and
heartbeats its claim between cells.  All retry/classification policy
is :func:`repro.resilience.run_attempts` — the executor's serial twin —
so transient failures back off and retry in-worker while permanent ones
are recorded in the shard report's failure taxonomy and left for the
scheduler to account.

Crash safety needs no protocol: cells already stored survive the crash
(the store is the ledger), the abandoned claim's lease expires, and the
scheduler re-issues only the still-missing fingerprints.

``$REPRO_FAULT`` ``cell`` clauses inject here too — one worker process
per ``serve`` slot makes a ``kill`` clause a genuine worker death — with
the attempt token keyed by the ticket's generation, so a requeued shard
re-rolls its fault decisions instead of dying identically forever.
"""

from __future__ import annotations

import os
import time

from repro.experiments.common import compute_cell
from repro.resilience import ExecutionPolicy, FailureReport, run_attempts
from repro.resilience.faults import plan_from_env
from repro.service.jobs import Job, JobCell
from repro.service.queue import ServiceQueue
from repro.store import ResultStore


class ServiceWorker:
    """Claims and executes one ticket at a time against a shared store."""

    def __init__(
        self,
        queue: ServiceQueue,
        store: ResultStore,
        name: str | None = None,
    ) -> None:
        self.queue = queue
        self.store = store
        self.name = name or f"worker-{os.getpid()}"

    def poll_once(self) -> bool:
        """Claim and run one ticket; False when none was available."""
        claim = self.queue.claim(self.name)
        if claim is None:
            return False
        self._run_claim(claim)
        return True

    def _run_claim(self, claim: dict) -> None:
        """Execute every cell of one claimed ticket."""
        job = self.queue.load_job(str(claim.get("job", "")))
        if job is None:
            self.queue.finish_claim(claim)
            return
        policy = ExecutionPolicy(retries=job.retries, max_failures=None)
        report = FailureReport()
        plan = plan_from_env()
        generation = int(claim.get("generation", 0))
        for index in claim.get("indices", []):
            index = int(index)
            if not 0 <= index < len(job.cells):
                continue
            cell = job.cells[index]
            if self.store.validated(cell.store_key()):
                # Another worker (or an earlier generation) got here
                # first; the fingerprint says so, skip idempotently.
                self.queue.heartbeat(claim)
                continue

            def compute(cell: JobCell = cell) -> object:
                if plan is not None:
                    plan.inject_cell(cell.label, generation)
                return compute_cell(cell.key, max_cycles=job.max_cycles)

            stats = run_attempts(index, cell.label, compute, policy, report)
            if stats is not None:
                self.store.put(cell.store_key(), stats)
            self._after_cell(job, cell)
            self.queue.heartbeat(claim)
        data = report.to_dict(policy)
        for failure_dict, failure in zip(data["failures"], report.failures):
            failure_dict["digest"] = job.cells[failure.index].digest
        data["worker"] = self.name
        self.queue.write_report(claim, data)
        self.queue.finish_claim(claim)

    def _after_cell(self, job: Job, cell: JobCell) -> None:
        """Per-cell hook; the chaos tests override it to die mid-shard."""


def worker_main(
    root: str,
    store_root: str | None = None,
    poll: float = 0.2,
    name: str | None = None,
) -> int:
    """Worker-process entry point: poll for tickets until told to stop.

    ``dkip-experiments serve`` spawns one process per ``--workers`` slot
    with this target; any other host pointing at the same spool
    directory can run it too (that is the whole multi-host story).
    """
    queue = ServiceQueue(root)
    store = ResultStore(store_root if store_root else queue.root / "store")
    worker = ServiceWorker(queue, store, name=name)
    while not queue.stop_requested():
        if not worker.poll_once():
            time.sleep(poll)
    return 0
