"""Job records for the sweep service: content-addressed, JSON on disk.

A job is one submitted sweep — the declarative :class:`SweepSpec`
mapping plus the scale it runs at.  Its identity is the canonical
digest of exactly that payload, so submitting the same grid twice (from
one client retrying, or two clients racing) resolves to *one* job file:
duplicate-submit dedup falls out of content addressing the same way
duplicate cell execution falls out of the store's fingerprints.

The job file is also the service's durable state: the scheduler plans
the grid once and records every cell's (digest, label, key payload)
triple in the file, so workers, requeues after a crash, and the
``status``/``results`` clients all read one consistent cell list without
re-expanding the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.fingerprint import digest
from repro.store import CellKey

#: On-disk job document version.
JOB_FORMAT = 1

#: Job lifecycle states.  ``queued`` → ``running`` → ``done``; planning
#: errors (a spec that no longer parses) go straight to ``failed``.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


def job_id_for(sweep: Mapping[str, Any], scale: str) -> str:
    """The content-addressed id of one (sweep mapping, scale) submission."""
    return digest({"sweep": dict(sweep), "scale": scale})


@dataclass
class JobCell:
    """One planned grid cell: its store fingerprint, human label, and
    the full key payload a worker re-executes it from."""

    digest: str
    label: str
    key: dict

    def store_key(self) -> CellKey:
        """The :class:`~repro.store.CellKey` this cell caches under."""
        return CellKey(payload=self.key, digest=self.digest)

    def to_dict(self) -> dict:
        """JSON-ready rendering."""
        return {"digest": self.digest, "label": self.label, "key": self.key}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobCell":
        """Rebuild a cell from its :meth:`to_dict` form."""
        return cls(
            digest=str(data["digest"]),
            label=str(data["label"]),
            key=dict(data["key"]),
        )


@dataclass
class Job:
    """One submitted sweep and everything the service knows about it."""

    job_id: str
    sweep: dict
    scale: str
    #: Maximum shard tickets per dispatch wave (the grid is split into at
    #: most this many work units; fewer when there are fewer cells).
    shards: int = 4
    #: Per-cell retry budget workers apply (transient failures only).
    retries: int = 2
    state: str = QUEUED
    submitted_at: float = 0.0
    finished_at: float | None = None
    #: Planned cells in canonical grid order (empty until planned).
    cells: list[JobCell] = field(default_factory=list)
    #: Cells whose validated store entry predated this job (plan time).
    cached: int = 0
    #: Digests seen with a validated store entry.
    stored: list[str] = field(default_factory=list)
    #: Worker failure records (``CellFailure.to_dict`` plus ``digest``).
    failures: list[dict] = field(default_factory=list)
    #: Digests abandoned after the requeue budget ran out.
    lost: list[str] = field(default_factory=list)
    #: Dispatch waves issued beyond the first (stale-claim recoveries).
    requeues: int = 0
    #: Ticket generations issued so far (names dispatch waves uniquely).
    generation: int = 0
    #: Shard report file names already folded into this record.
    reports: list[str] = field(default_factory=list)
    #: Supervision counters merged from shard reports
    #: (:meth:`repro.resilience.FailureReport.to_dict` keys).
    counters: dict = field(default_factory=dict)
    #: Planning error message when ``state == FAILED``.
    error: str = ""

    @property
    def max_cycles(self) -> int | None:
        """The sweep's deadlock-guard bound, if any."""
        value = self.sweep.get("max_cycles")
        return int(value) if value is not None else None

    def failed_digests(self) -> dict[str, str]:
        """Map of permanently failed cell digests to their failure kind
        (digests that later stored successfully are excluded)."""
        stored = set(self.stored)
        return {
            str(failure["digest"]): str(failure.get("kind", "unknown"))
            for failure in self.failures
            if failure.get("digest") and failure["digest"] not in stored
        }

    def summary(self) -> dict:
        """Completion accounting: cells / simulated / cached / failed / lost."""
        stored = len(set(self.stored))
        return {
            "cells": len(self.cells),
            "stored": stored,
            "simulated": max(0, stored - self.cached),
            "cached": self.cached,
            "failed": len(self.failed_digests()),
            "lost": len(self.lost),
        }

    def summary_line(self) -> str:
        """The one-line completion event ``serve`` prints per job."""
        s = self.summary()
        line = (
            f"job {self.job_id[:12]} {self.state}: {s['cells']} cells, "
            f"{s['simulated']} simulated, {s['cached']} cached, "
            f"{s['failed']} failed"
        )
        if s["lost"]:
            line += f", {s['lost']} lost"
        return line

    def to_dict(self) -> dict:
        """JSON-ready rendering of the whole job record."""
        return {
            "format": JOB_FORMAT,
            "id": self.job_id,
            "sweep": self.sweep,
            "scale": self.scale,
            "shards": self.shards,
            "retries": self.retries,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "cells": [cell.to_dict() for cell in self.cells],
            "cached": self.cached,
            "stored": self.stored,
            "failures": self.failures,
            "lost": self.lost,
            "requeues": self.requeues,
            "generation": self.generation,
            "reports": self.reports,
            "counters": self.counters,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        """Rebuild a job from its :meth:`to_dict` form."""
        if data.get("format") != JOB_FORMAT:
            raise ValueError(f"unsupported job format {data.get('format')!r}")
        return cls(
            job_id=str(data["id"]),
            sweep=dict(data["sweep"]),
            scale=str(data["scale"]),
            shards=int(data.get("shards", 4)),
            retries=int(data.get("retries", 2)),
            state=str(data.get("state", QUEUED)),
            submitted_at=float(data.get("submitted_at", 0.0)),
            finished_at=data.get("finished_at"),
            cells=[JobCell.from_dict(c) for c in data.get("cells", [])],
            cached=int(data.get("cached", 0)),
            stored=[str(d) for d in data.get("stored", [])],
            failures=list(data.get("failures", [])),
            lost=[str(d) for d in data.get("lost", [])],
            requeues=int(data.get("requeues", 0)),
            generation=int(data.get("generation", 0)),
            reports=[str(r) for r in data.get("reports", [])],
            counters=dict(data.get("counters", {})),
            error=str(data.get("error", "")),
        )
