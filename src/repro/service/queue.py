"""The service transport: a spool directory of jobs, tickets and claims.

Layout::

    <root>/jobs/<job id>.json          one record per submitted sweep
    <root>/shards/<ticket>.json        claimable work units (cell indices)
    <root>/claims/<ticket>.json        tickets a worker owns (+ heartbeat)
    <root>/done/<ticket>.json          per-shard completion reports
    <root>/stop                        drain flag ``serve`` raises on exit

Everything is plain JSON files moved with ``os.replace``, which is all
the coordination the service needs: a worker claims a ticket by renaming
it from ``shards/`` into ``claims/`` — exactly one of N racing renames
of the same source succeeds, the rest observe ``FileNotFoundError`` and
move on — and every state rewrite goes through a uniquely named temp
file, mirroring the store's atomic-write discipline.  Because the
substrate is a directory, "multi-host" means "share the directory" (NFS
or any shared mount); a TCP transport only has to reproduce this
module's method surface, nothing above it knows about files.

The wall clock is injected (``clock=``) so lease expiry and heartbeat
age are deterministic under test.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.service.jobs import DONE, FAILED, Job

#: Per-process counter feeding unique temp-file names.
_TMP_COUNTER = itertools.count()


def atomic_write_json(path: Path, data: Mapping[str, Any]) -> None:
    """Write *data* to *path* atomically via a uniquely named temp file.

    No fsync: spool files are coordination state, not the results of
    record — a crash loses at worst one in-flight rewrite, which the
    scheduler regenerates from the store on its next poll.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(
        f".tmp.{os.getpid()}.{next(_TMP_COUNTER)}.{os.urandom(4).hex()}"
    )
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, sort_keys=True)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def read_json(path: Path) -> dict | None:
    """Read one JSON spool file; ``None`` when it vanished or is torn.

    Concurrent renames and rewrites make both outcomes routine — callers
    treat them as "not there anymore" and move on.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


class ServiceQueue:
    """One service spool directory and the operations over it."""

    def __init__(
        self, root: str | os.PathLike, clock: Callable[[], float] = time.time
    ) -> None:
        self.root = Path(root)
        self.clock = clock
        self.jobs_dir = self.root / "jobs"
        self.shards_dir = self.root / "shards"
        self.claims_dir = self.root / "claims"
        self.done_dir = self.root / "done"
        self.stop_path = self.root / "stop"

    def ensure(self) -> None:
        """Create the spool layout (idempotent)."""
        for directory in (
            self.jobs_dir, self.shards_dir, self.claims_dir, self.done_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def job_path(self, job_id: str) -> Path:
        """Where *job_id*'s record lives (existing or not)."""
        return self.jobs_dir / f"{job_id}.json"

    def save_job(self, job: Job) -> None:
        """Atomically persist *job*'s current record."""
        atomic_write_json(self.job_path(job.job_id), job.to_dict())

    def load_job(self, job_id: str) -> Job | None:
        """Load one job record; ``None`` when absent or unreadable."""
        data = read_json(self.job_path(job_id))
        if data is None:
            return None
        try:
            return Job.from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None

    def iter_jobs(self) -> list[Job]:
        """Every readable job record, ordered by submission time."""
        jobs = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            job = self.load_job(path.stem)
            if job is not None:
                jobs.append(job)
        return sorted(jobs, key=lambda job: (job.submitted_at, job.job_id))

    def match_job(self, prefix: str) -> Job | None:
        """The unique job whose id starts with *prefix*, if exactly one."""
        matches = [
            job for job in self.iter_jobs() if job.job_id.startswith(prefix)
        ]
        return matches[0] if len(matches) == 1 else None

    def submit(self, job: Job) -> tuple[Job, str]:
        """Enqueue *job*, deduplicating against its content-addressed id.

        Returns the authoritative record plus what happened: ``"new"``
        (no such job existed), ``"attached"`` (an identical submission
        is already queued or running — the caller just follows it), or
        ``"resubmitted"`` (a finished record was reset to queued; on a
        warm store the scheduler completes it with zero simulations).
        """
        self.ensure()
        existing = self.load_job(job.job_id)
        if existing is not None and existing.state not in (DONE, FAILED):
            return existing, "attached"
        job.submitted_at = self.clock()
        self.save_job(job)
        return job, "new" if existing is None else "resubmitted"

    # ------------------------------------------------------------------
    # Tickets (shards/ -> claims/ -> done/)
    # ------------------------------------------------------------------

    @staticmethod
    def ticket_name(job_id: str, generation: int, part: int) -> str:
        """The file name of one dispatch ticket."""
        return f"{job_id}.g{generation}.p{part}.json"

    def write_ticket(
        self, job_id: str, generation: int, part: int, indices: list[int]
    ) -> str:
        """Publish one claimable ticket; returns its name."""
        name = self.ticket_name(job_id, generation, part)
        atomic_write_json(
            self.shards_dir / name,
            {
                "job": job_id,
                "generation": generation,
                "part": part,
                "indices": list(indices),
            },
        )
        return name

    def iter_tickets(self) -> list[tuple[str, dict]]:
        """Every unclaimed ticket as ``(name, content)``."""
        tickets = []
        for path in sorted(self.shards_dir.glob("*.json")):
            data = read_json(path)
            if data is not None:
                tickets.append((path.name, data))
        return tickets

    def claim(self, worker: str) -> dict | None:
        """Claim one ticket for *worker*; ``None`` when none is free.

        The rename from ``shards/`` to ``claims/`` is the mutual
        exclusion: of N workers racing for one ticket, exactly one
        rename finds the source file.  The claimed ticket is rewritten
        with the owner and a first heartbeat, and returned with its
        ``name`` so the worker can heartbeat and finish it.
        """
        for path in sorted(self.shards_dir.glob("*.json")):
            claimed = self.claims_dir / path.name
            try:
                os.replace(path, claimed)
            except FileNotFoundError:
                continue  # someone else won this ticket
            data = read_json(claimed)
            if data is None:
                continue  # scheduler reaped it between rename and read
            data["name"] = path.name
            data["worker"] = worker
            data["heartbeat"] = self.clock()
            atomic_write_json(claimed, data)
            return data
        return None

    def heartbeat(self, claim: dict) -> None:
        """Refresh *claim*'s lease (call between cells)."""
        claim["heartbeat"] = self.clock()
        atomic_write_json(self.claims_dir / claim["name"], claim)

    def finish_claim(self, claim: dict) -> None:
        """Retire a completed claim."""
        (self.claims_dir / claim["name"]).unlink(missing_ok=True)

    def drop_claim(self, name: str) -> None:
        """Reap one claim (stale lease) so its cells can be re-issued."""
        (self.claims_dir / name).unlink(missing_ok=True)

    def iter_claims(self) -> list[tuple[str, dict]]:
        """Every live claim as ``(name, content)``."""
        claims = []
        for path in sorted(self.claims_dir.glob("*.json")):
            data = read_json(path)
            if data is not None:
                claims.append((path.name, data))
        return claims

    # ------------------------------------------------------------------
    # Shard reports
    # ------------------------------------------------------------------

    def write_report(self, claim: dict, data: Mapping[str, Any]) -> None:
        """Publish the completion report of one claimed ticket."""
        atomic_write_json(self.done_dir / claim["name"], dict(data))

    def iter_reports(self, job_id: str) -> list[tuple[str, dict]]:
        """Every report of *job_id*'s tickets as ``(name, content)``."""
        reports = []
        for path in sorted(self.done_dir.glob(f"{job_id}.*.json")):
            data = read_json(path)
            if data is not None:
                reports.append((path.name, data))
        return reports

    # ------------------------------------------------------------------
    # Drain flag
    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Raise the drain flag; workers exit at their next poll."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.stop_path.touch()

    def clear_stop(self) -> None:
        """Lower the drain flag (``serve`` start-up)."""
        self.stop_path.unlink(missing_ok=True)

    def stop_requested(self) -> bool:
        """Whether the drain flag is raised."""
        return self.stop_path.exists()
