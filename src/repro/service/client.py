"""The client side of the sweep service: submit, status, results.

Everything here is read-mostly: ``submit`` writes one content-addressed
job record (the scheduler does the rest), ``status`` renders a job's
per-shard completion counts and failure taxonomy from the spool, and
``results`` collects the finished grid straight out of the shared store
— it never simulates, so a client can watch partial results while the
sweep is still running and render the full table the moment the last
fingerprint lands.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping

from repro.experiments.common import ExperimentResult, scale_of
from repro.experiments.sweep import SweepSpec, plan_grid, summarize_grid
from repro.resilience import CellFailure
from repro.service.jobs import DONE, FAILED, Job, job_id_for
from repro.service.queue import ServiceQueue
from repro.store import ResultStore


def build_job(
    sweep: Mapping[str, Any],
    scale: str,
    shards: int = 4,
    retries: int = 2,
) -> Job:
    """Validate *sweep* and wrap it in a content-addressed :class:`Job`.

    The mapping round-trips through :class:`SweepSpec` so the job id is
    computed over the canonical form — equivalent spellings of the same
    grid hash to the same job.
    """
    spec = SweepSpec.from_mapping(sweep)
    scale = scale_of(scale).value
    mapping = spec.to_mapping()
    return Job(
        job_id=job_id_for(mapping, scale),
        sweep=mapping,
        scale=scale,
        shards=max(1, shards),
        retries=max(0, retries),
    )


def submit_job(
    queue: ServiceQueue,
    sweep: Mapping[str, Any],
    scale: str,
    shards: int = 4,
    retries: int = 2,
) -> tuple[Job, str]:
    """Build and enqueue one sweep; see :meth:`ServiceQueue.submit`."""
    return queue.submit(build_job(sweep, scale, shards=shards, retries=retries))


def job_status(queue: ServiceQueue, store: ResultStore, job: Job) -> dict:
    """One job's live progress: counts, per-shard completion, taxonomy."""
    stored = sum(
        1 for cell in job.cells if store.validated(cell.store_key())
    )
    shards = []
    for claimed, batch in (
        (False, queue.iter_tickets()), (True, queue.iter_claims())
    ):
        for name, data in batch:
            if str(data.get("job", "")) != job.job_id:
                continue
            indices = [int(i) for i in data.get("indices", [])]
            done = sum(
                1 for i in indices
                if 0 <= i < len(job.cells)
                and store.validated(job.cells[i].store_key())
            )
            shards.append(
                {
                    "name": name,
                    "claimed": claimed,
                    "worker": data.get("worker", ""),
                    "generation": int(data.get("generation", 0)),
                    "cells": len(indices),
                    "done": done,
                    "heartbeat_age": (
                        queue.clock() - float(data["heartbeat"])
                        if claimed and "heartbeat" in data
                        else None
                    ),
                }
            )
    kinds: dict[str, int] = {}
    for kind in job.failed_digests().values():
        kinds[kind] = kinds.get(kind, 0) + 1
    return {
        "id": job.job_id,
        "state": job.state,
        "error": job.error,
        "cells": len(job.cells),
        "stored": stored,
        "cached": job.cached,
        "failed": len(job.failed_digests()),
        "lost": len(job.lost),
        "shards": shards,
        "failure_kinds": dict(sorted(kinds.items())),
        "counters": dict(job.counters),
    }


def format_status(status: dict) -> list[str]:
    """Render one :func:`job_status` dict as CLI lines."""
    lines = [
        f"job {status['id'][:12]}  {status['state']:<8s} "
        f"{status['stored']}/{status['cells']} cells stored "
        f"({status['cached']} cached), {status['failed']} failed, "
        f"{status['lost']} lost"
    ]
    if status["error"]:
        lines.append(f"  error: {status['error']}")
    for shard in status["shards"]:
        owner = (
            f"claimed by {shard['worker']}" if shard["claimed"] else "unclaimed"
        )
        line = (
            f"  shard {shard['name']:<28s} {owner}  "
            f"{shard['done']}/{shard['cells']} done"
        )
        if shard["heartbeat_age"] is not None:
            line += f"  (heartbeat {shard['heartbeat_age']:.1f}s ago)"
        lines.append(line)
    if status["failure_kinds"]:
        detail = ", ".join(
            f"{count} {kind}" for kind, count in status["failure_kinds"].items()
        )
        lines.append(f"  failures: {detail}")
    counters = status["counters"]
    if counters:
        lines.append(
            "  workers: "
            f"{counters.get('completed', 0)} cells completed, "
            f"{counters.get('retries', 0)} retries, "
            f"{counters.get('worker_losses', 0)} lost worker(s)"
        )
    return lines


def collect_results(
    queue: ServiceQueue, store: ResultStore, job: Job
) -> tuple[ExperimentResult, int]:
    """Assemble *job*'s grid from the store, read-only.

    Fills a :class:`~repro.experiments.sweep.SweepGrid` with whatever
    the store holds for the job's fingerprints (missing cells stay
    ``None`` and render as ``n/a``), attaches the recorded failures so
    the table says *why* a cell is absent, and formats it through the
    same :func:`summarize_grid` path ``dkip-experiments sweep`` uses.
    Returns the result plus the count of cells not yet available.
    """
    spec = SweepSpec.from_mapping(job.sweep)
    plan = plan_grid(spec, scale_of(job.scale))
    grid = plan.grid()
    coords = plan.coords()
    missing = 0
    digest_to_coord: dict[str, tuple[int, int, str]] = {}
    for coord, cell in zip(coords, job.cells):
        stats = store.get(cell.store_key())
        grid.results[coord] = stats
        digest_to_coord[cell.digest] = coord
        if stats is None:
            missing += 1
    for failure in job.failures:
        coord = digest_to_coord.get(str(failure.get("digest", "")))
        if coord is None or grid.results.get(coord) is not None:
            continue
        grid.failures[coord] = CellFailure(
            index=int(failure.get("index", -1)),
            cell=str(failure.get("cell", "?")),
            kind=str(failure.get("kind", "unknown")),
            error=str(failure.get("error", "")),
            message=str(failure.get("message", "")),
            traceback=str(failure.get("traceback", "")),
            attempts=int(failure.get("attempts", 1)),
            duration=float(failure.get("duration_s", 0.0)),
        )
    return summarize_grid(grid), missing


def wait_for_job(
    queue: ServiceQueue,
    job_id: str,
    poll: float = 0.5,
    timeout: float | None = None,
    on_progress: Callable[[Job], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Job | None:
    """Block until *job_id* finishes; ``None`` on timeout.

    The attachable-progress primitive behind ``submit --wait``: any
    client can watch any job — reconnecting is just calling this again.
    """
    deadline = None if timeout is None else queue.clock() + timeout
    while True:
        job = queue.load_job(job_id)
        if job is not None and job.state in (DONE, FAILED):
            return job
        if on_progress is not None and job is not None:
            on_progress(job)
        if deadline is not None and queue.clock() >= deadline:
            return None
        sleep(poll)
