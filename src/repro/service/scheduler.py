"""The sweep-service scheduler: plan, shard, reap, heal, complete.

One scheduler per spool directory.  Each :meth:`Scheduler.poll_once`
pass is a pure function of the spool and the store — queued jobs get
planned into fingerprinted cell lists, unresolved cells not covered by
an outstanding ticket get (re)dispatched, stale claims get reaped, and
jobs whose every cell is stored/failed/lost get completed.  Because the
pass re-derives "what is missing" from the store every time, every
failure mode the service cares about — worker death, duplicate
dispatch, a scheduler restart, a client resubmitting a finished job —
collapses into the same recovery: *requeue the missing fingerprints*.

Skip decisions go through validated store reads
(:meth:`repro.store.ResultStore.validated`, i.e. ``get()`` semantics),
never bare existence checks: a zero-length or torn entry schedules like
a miss and is re-simulated rather than trusted.

Cross-job dedup is also fingerprint-based: a cell already covered by
*any* job's outstanding ticket is not dispatched again, so two
overlapping submissions sharing one store never double-simulate a cell.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.experiments.common import WorkloadPool, scale_of
from repro.experiments.sweep import SweepSpec, plan_grid
from repro.resilience import cell_label
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, Job, JobCell
from repro.service.queue import ServiceQueue
from repro.store import ResultStore, cell_key

#: Counter keys folded from shard reports into ``Job.counters``.
_REPORT_COUNTERS = ("cells", "completed", "retries", "timeouts", "worker_deaths")


class Scheduler:
    """Plans submitted jobs into tickets and heals them to completion."""

    def __init__(
        self,
        queue: ServiceQueue,
        store: ResultStore,
        lease: float = 30.0,
        requeue_budget: int = 5,
        pool: WorkloadPool | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.queue = queue
        self.store = store
        #: Seconds without a heartbeat before a claim counts as dead.
        self.lease = lease
        #: Dispatch waves beyond the first before cells are declared lost.
        self.requeue_budget = requeue_budget
        self.pool = pool or WorkloadPool()
        self.clock = clock if clock is not None else queue.clock

    # ------------------------------------------------------------------
    # The poll pass
    # ------------------------------------------------------------------

    def poll_once(self) -> list[str]:
        """Run one scheduling pass; returns human-readable event lines."""
        self.queue.ensure()
        events: list[str] = []
        jobs = {job.job_id: job for job in self.queue.iter_jobs()}
        for job in jobs.values():
            if job.state == QUEUED:
                self._plan(job, events)
        for job in jobs.values():
            if job.state == RUNNING:
                self._absorb_reports(job)
        self._reap_stale(jobs, events)
        self._dispatch(jobs, events)
        for job in jobs.values():
            if job.state == RUNNING:
                self._complete(job, events)
        return events

    def drained(self) -> bool:
        """Whether every submitted job has finished (``serve --once``)."""
        if self.queue.iter_tickets() or self.queue.iter_claims():
            return False
        return all(
            job.state in (DONE, FAILED) for job in self.queue.iter_jobs()
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _plan(self, job: Job, events: list[str]) -> None:
        """Expand a queued job's sweep into fingerprinted cells."""
        try:
            spec = SweepSpec.from_mapping(job.sweep)
            plan = plan_grid(spec, scale_of(job.scale))
            cells = []
            for config, bench, memory in plan.cells():
                key = cell_key(
                    config, self.pool.get(bench), plan.instructions, memory
                )
                cells.append(
                    JobCell(
                        digest=key.digest,
                        label=cell_label(config, bench, memory),
                        key=key.payload,
                    )
                )
        except Exception as error:  # noqa: BLE001 - the job reports it
            job.state = FAILED
            job.error = str(error)
            job.finished_at = self.clock()
            self.queue.save_job(job)
            events.append(f"job {job.job_id[:12]} failed to plan: {error}")
            return
        job.cells = cells
        # The validated-read skip decision: torn/zero-length entries
        # count as missing and re-simulate (contains() would lie here).
        stored = [
            cell.digest for cell in cells if self.store.validated(cell.store_key())
        ]
        job.stored = sorted(set(stored))
        job.cached = len(set(stored))
        job.state = RUNNING
        self.queue.save_job(job)
        events.append(
            f"job {job.job_id[:12]} planned: {len(cells)} cells, "
            f"{job.cached} cached"
        )

    # ------------------------------------------------------------------
    # Report absorption
    # ------------------------------------------------------------------

    def _absorb_reports(self, job: Job) -> None:
        """Fold new shard reports into the job record."""
        changed = False
        for name, data in self.queue.iter_reports(job.job_id):
            if name in job.reports:
                continue
            job.reports.append(name)
            for counter in _REPORT_COUNTERS:
                job.counters[counter] = (
                    job.counters.get(counter, 0) + int(data.get(counter, 0))
                )
            for failure in data.get("failures", []):
                if isinstance(failure, dict) and failure.get("digest"):
                    job.failures.append(failure)
            changed = True
        if changed:
            self.queue.save_job(job)

    # ------------------------------------------------------------------
    # Lease reaping
    # ------------------------------------------------------------------

    def _reap_stale(self, jobs: dict[str, Job], events: list[str]) -> None:
        """Drop claims whose worker stopped heartbeating."""
        now = self.clock()
        for name, claim in self.queue.iter_claims():
            age = now - float(claim.get("heartbeat", 0.0))
            if age <= self.lease:
                continue
            self.queue.drop_claim(name)
            job = jobs.get(str(claim.get("job", "")))
            if job is not None:
                job.requeues += 1
                job.counters["worker_losses"] = (
                    job.counters.get("worker_losses", 0) + 1
                )
                self.queue.save_job(job)
            events.append(
                f"shard {name} stale ({age:.1f}s since heartbeat); "
                "requeueing its missing cells"
            )

    # ------------------------------------------------------------------
    # Dispatch (initial sharding and every requeue, one code path)
    # ------------------------------------------------------------------

    def _covered_digests(self, jobs: dict[str, Job]) -> set[str]:
        """Digests referenced by any outstanding ticket or claim."""
        covered: set[str] = set()
        outstanding = self.queue.iter_tickets() + self.queue.iter_claims()
        for _name, data in outstanding:
            job = jobs.get(str(data.get("job", "")))
            if job is None:
                continue
            for index in data.get("indices", []):
                if 0 <= int(index) < len(job.cells):
                    covered.add(job.cells[int(index)].digest)
        return covered

    def _refresh_stored(self, job: Job) -> bool:
        """Validate not-yet-seen digests against the store; True if new."""
        stored = set(job.stored)
        grew = False
        for cell in job.cells:
            if cell.digest in stored:
                continue
            if self.store.validated(cell.store_key()):
                stored.add(cell.digest)
                grew = True
        if grew:
            job.stored = sorted(stored)
        return grew

    def _dispatch(self, jobs: dict[str, Job], events: list[str]) -> None:
        """Issue tickets for every unresolved, uncovered cell.

        One code path serves the initial sharding, post-crash recovery,
        and warm resubmits alike: compare the job's cells against the
        store, subtract permanently failed/lost digests and cells
        already in flight (in *any* job — that is the cross-job dedup),
        and shard whatever remains.
        """
        covered = self._covered_digests(jobs)
        resolved_elsewhere: set[str] = set()
        for job in jobs.values():
            resolved_elsewhere |= set(job.failed_digests())
            resolved_elsewhere |= set(job.lost)
        for job in jobs.values():
            if job.state != RUNNING:
                continue
            grew = self._refresh_stored(job)
            stored = set(job.stored)
            pending = [
                index
                for index, cell in enumerate(job.cells)
                if cell.digest not in stored
                and cell.digest not in resolved_elsewhere
            ]
            uncovered = [
                index for index in pending
                if job.cells[index].digest not in covered
            ]
            if not uncovered:
                if grew:
                    self.queue.save_job(job)
                continue
            if job.requeues > self.requeue_budget:
                job.lost = sorted(
                    set(job.lost)
                    | {job.cells[index].digest for index in uncovered}
                )
                self.queue.save_job(job)
                events.append(
                    f"job {job.job_id[:12]}: abandoning {len(uncovered)} "
                    f"cell(s) after {job.requeues} requeues"
                )
                continue
            parts = min(job.shards, len(uncovered)) or 1
            generation = job.generation
            job.generation += 1
            for part in range(parts):
                indices = uncovered[part::parts]
                self.queue.write_ticket(job.job_id, generation, part, indices)
                for index in indices:
                    covered.add(job.cells[index].digest)
            self.queue.save_job(job)
            events.append(
                f"job {job.job_id[:12]}: dispatched {len(uncovered)} "
                f"cell(s) in {parts} shard(s) (generation {generation})"
            )

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def _complete(self, job: Job, events: list[str]) -> None:
        """Finish a running job once every cell is accounted for."""
        unresolved = (
            {cell.digest for cell in job.cells}
            - set(job.stored)
            - set(job.failed_digests())
            - set(job.lost)
        )
        if unresolved:
            return
        outstanding = any(
            str(data.get("job", "")) == job.job_id
            for _name, data in self.queue.iter_tickets() + self.queue.iter_claims()
        )
        if outstanding:
            return
        job.state = DONE
        job.finished_at = self.clock()
        self.queue.save_job(job)
        events.append(job.summary_line())
