"""Self-rendering reproduction report.

The subsystem that turns the result store into the paper's figures:
declarative :class:`FigureSpec` records (one per experiment, defined
next to each harness) drive SVG rendering (:mod:`repro.viz.svg`),
reproduced-vs-paper verdicts (:mod:`repro.report.verdict`) and the
assembly of a single standalone ``REPRODUCTION.md``
(:mod:`repro.report.build`), reachable as ``dkip-experiments report``
or ``make reproduce``.
"""

from repro.report.build import build_report, build_sections, markdown_table
from repro.report.spec import Check, FigureSpec
from repro.report.verdict import CheckResult, FigureVerdict, evaluate

__all__ = [
    "Check",
    "CheckResult",
    "FigureSpec",
    "FigureVerdict",
    "build_report",
    "build_sections",
    "evaluate",
    "markdown_table",
]
