"""Assembly of the self-contained reproduction report.

:func:`build_report` runs every requested experiment through the normal
store-aware harness path (cached cells load instantly; missing cells
simulate and persist), renders each result as a Markdown section — data
table, embedded SVG chart, reproduced-vs-paper verdict — and returns one
standalone ``REPRODUCTION.md`` string: no external images, stylesheets
or scripts, so the document survives being mailed, archived or read in
any Markdown viewer with inline-HTML support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.experiments.common import ExperimentResult, Scale
from repro.report.spec import FigureSpec
from repro.report.verdict import BADGES, SHAPE_ONLY, FigureVerdict, evaluate
from repro.viz.svg import grouped_bar_chart_svg, line_chart_svg

#: Citation line used in the report header.
PAPER_CITATION = (
    "M. Pericàs, A. Cristal, R. González, D. A. Jiménez and M. Valero, "
    '"A Decoupled KILO-Instruction Processor", HPCA 2006'
)


@dataclass
class ReportSection:
    """One rendered experiment: its result, verdict and Markdown body."""

    name: str
    paper: str
    result: ExperimentResult
    verdict: FigureVerdict
    body: str


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render headers + rows as a GitHub-flavored Markdown table."""
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value).replace("|", "\\|")

    lines = [
        "| " + " | ".join(_fmt(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return "\n".join(lines)


def _chart_title(result: ExperimentResult, spec: FigureSpec, limit: int = 78) -> str:
    title = f"{result.name}: {spec.caption}"
    if len(title) <= limit:
        return title
    return title[:limit].rsplit(" ", 1)[0] + "…"


def figure_svg(spec: FigureSpec, result: ExperimentResult) -> str | None:
    """The spec's chart for *result* as an SVG string (None for tables)."""
    if spec.kind == "line" and spec.series is not None:
        series = spec.series(result)
        if not series:
            return None
        return line_chart_svg(
            series,
            title=_chart_title(result, spec),
            x_label=spec.x_label,
            y_label=spec.y_label,
            logx=spec.logx,
            reference=dict(spec.reference_series) if spec.reference_series else None,
        )
    if spec.kind == "bars" and spec.groups is not None:
        groups = spec.groups(result)
        if not groups:
            return None
        return grouped_bar_chart_svg(
            groups,
            title=_chart_title(result, spec),
            x_label=spec.x_label,
            y_label=spec.y_label,
            reference=dict(spec.reference_points) if spec.reference_points else None,
        )
    return None


def render_section(
    name: str,
    paper: str,
    description: str,
    spec: FigureSpec | None,
    result: ExperimentResult,
    verdict: FigureVerdict,
) -> str:
    """One ``## experiment`` section of the report."""
    parts = [f"## `{name}` — {paper}", ""]
    parts.append(f"**{result.title}.** {description}")
    if spec is not None and spec.caption:
        parts.append("")
        parts.append(f"*{spec.caption}*")
    parts.append("")
    parts.append(markdown_table(result.headers, result.rows))
    if spec is not None:
        svg = figure_svg(spec, result)
        if svg is not None:
            parts.append("")
            parts.append(svg)
    parts.append("")
    if verdict.status == SHAPE_ONLY:
        parts.append(
            f"**Verdict:** {verdict.badge} shape-only — the paper states no "
            "directly comparable numbers for this result."
        )
    else:
        parts.append(f"**Verdict:** {verdict.badge} {verdict.status}")
        for check in verdict.checks:
            parts.append(f"- {BADGES[check.status]} {check.describe()}")
    if result.notes:
        parts.append("")
        for note in result.notes:
            parts.append(f"> {note}")
    return "\n".join(parts)


def build_sections(
    names: Sequence[str] | None = None,
    scale: Scale | str = Scale.QUICK,
    store=None,
    force: bool = False,
) -> list[ReportSection]:
    """Run the requested experiments and render one section per result."""
    # Imported lazily: the registry imports the experiment modules, which
    # import repro.report.spec — a module-level import here would cycle.
    from repro.experiments.registry import REGISTRY, get_info

    scale = Scale(scale)
    sections = []
    for name in names if names is not None else list(REGISTRY):
        info = get_info(name)
        result = info.run(scale, store=store, force=force)
        verdict = evaluate(info.spec, result)
        body = render_section(
            name, info.paper, info.description, info.spec, result, verdict
        )
        sections.append(ReportSection(name, info.paper, result, verdict, body))
    return sections


def build_report(
    names: Sequence[str] | None = None,
    scale: Scale | str = Scale.QUICK,
    store=None,
    force: bool = False,
) -> str:
    """Build the complete ``REPRODUCTION.md`` document and return it."""
    scale = Scale(scale)
    sections = build_sections(names, scale, store=store, force=force)

    parts = [
        "# REPRODUCTION — A Decoupled KILO-Instruction Processor",
        "",
        f"Reproduction report for {PAPER_CITATION}.",
        "",
        "Every section regenerates one of the paper's tables/figures on "
        "this repository's synthetic-workload simulator and grades it "
        "against the numbers the paper states.  Absolute IPC differs from "
        "the authors' SimpleScalar/Alpha setup by construction; the "
        "verdicts therefore compare *relative* quantities (speedups, "
        "gains, fractions) wherever the paper allows it.",
        "",
        f"- scale: `{scale.value}` "
        "(`--scale default|full` sweeps more benchmarks, windows and sizes)",
        f"- experiments: {len(sections)}",
        f"- store: {'`' + str(store.root) + '`' if store is not None else 'none (every cell simulated)'}",
    ]
    if store is not None:
        parts.append(
            f"- cells: {store.hits} cached, {store.writes} simulated this run"
        )
    if scale == Scale.QUICK:
        parts.extend(
            [
                "",
                "> **Quick-scale caveat:** `quick` runs 4,000 committed "
                "instructions over a five-benchmark subset per suite, so "
                "sweep gains and peaks overshoot the paper's full-trace "
                "numbers; `--scale default` or `full` tightens the match.",
            ]
        )
    parts.extend(
        [
            "",
            "Verdict legend: ✅ matches the paper within tolerance "
            "(±15% unless stated) · 🟡 within the looser tolerance (±40%) "
            "· ❌ deviates · ◽ shape-only (no paper numbers to compare).",
            "",
            "## Summary",
            "",
            markdown_table(
                ["experiment", "paper", "verdict", "checks"],
                [
                    [
                        f"`{s.name}`",
                        s.paper,
                        f"{s.verdict.badge} {s.verdict.status}",
                        len(s.verdict.checks) or "—",
                    ]
                    for s in sections
                ],
            ),
            "",
        ]
    )
    for section in sections:
        parts.append(section.body)
        parts.append("")
    parts.extend(
        [
            "---",
            "",
            "## Regenerating this document",
            "",
            "```bash",
            "make reproduce                     # quick scale, .repro-store cache",
            "dkip-experiments report --scale default --store .repro-store",
            "dkip-experiments report fig9 fig12 --out fig9_12.md",
            "```",
            "",
            "A warm result store rebuilds the whole document in seconds; "
            "cold cells simulate once and persist.  See `README.md` for "
            "the figure-by-figure guide and `ARCHITECTURE.md` for how the "
            "pieces fit together.",
        ]
    )
    return "\n".join(parts) + "\n"
