"""Reproduced-vs-paper verdict evaluation.

Turns a :class:`~repro.report.spec.FigureSpec`'s checks plus an
:class:`~repro.experiments.common.ExperimentResult` into graded statuses:
``pass`` / ``within-tolerance`` / ``deviates`` per check, the worst of
them as the figure verdict, and ``shape-only`` for figures the paper
states no comparable numbers for.  The report renders these as the
verdict line under every figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentResult
from repro.report.spec import Check, FigureSpec
from repro.viz.svg import compact_number as _fmt

#: Check/figure statuses, ordered from best to worst.
PASS = "pass"
WITHIN = "within-tolerance"
DEVIATES = "deviates"
NO_DATA = "no-data"
SHAPE_ONLY = "shape-only"

_SEVERITY = {PASS: 0, SHAPE_ONLY: 0, WITHIN: 1, DEVIATES: 2, NO_DATA: 2}

#: Status -> marker used in the rendered report.
BADGES = {
    PASS: "✅",
    WITHIN: "🟡",
    DEVIATES: "❌",
    NO_DATA: "❌",
    SHAPE_ONLY: "◽",
}


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one :class:`~repro.report.spec.Check`."""

    label: str
    status: str
    paper: float
    reproduced: float | None
    delta_rel: float | None
    mode: str
    note: str = ""

    def describe(self) -> str:
        """One human-readable line for the report."""
        if self.reproduced is None:
            return f"{self.label}: no data in this result"
        bound = {"at_least": "≥", "at_most": "≤"}.get(self.mode)
        paper = f"{bound} {_fmt(self.paper)}" if bound else _fmt(self.paper)
        text = f"{self.label}: reproduced {_fmt(self.reproduced)} vs paper {paper}"
        if self.mode == "match" and self.delta_rel is not None:
            text += f" ({self.delta_rel:+.0%})"
        if self.note:
            text += f" — {self.note}"
        return text


@dataclass(frozen=True)
class FigureVerdict:
    """Aggregate verdict for one figure: worst check status plus detail."""

    status: str
    checks: tuple[CheckResult, ...]

    @property
    def badge(self) -> str:
        """Marker character for the report and the summary table."""
        return BADGES[self.status]


def evaluate_check(check: Check, result: ExperimentResult) -> CheckResult:
    """Grade one check against a result table."""
    reproduced = check.metric(result)
    if reproduced is None:
        return CheckResult(
            check.label, NO_DATA, check.paper, None, None, check.mode, check.note
        )
    if check.mode == "match":
        scale = abs(check.paper) or 1.0
        delta = (reproduced - check.paper) / scale
        if abs(delta) <= check.pass_rel:
            status = PASS
        elif abs(delta) <= check.warn_rel:
            status = WITHIN
        else:
            status = DEVIATES
        return CheckResult(
            check.label, status, check.paper, reproduced, delta, check.mode, check.note
        )
    if check.mode not in ("at_least", "at_most"):
        raise ValueError(f"unknown check mode {check.mode!r}")
    # One-sided claims: meeting the bound passes outright; the graded
    # slack only applies on the failing side.
    scale = abs(check.paper) or 1.0
    if check.mode == "at_least":
        shortfall = (check.paper - reproduced) / scale
    else:
        shortfall = (reproduced - check.paper) / scale
    if shortfall <= 0:
        status = PASS
    elif shortfall <= check.warn_rel:
        status = WITHIN
    else:
        status = DEVIATES
    return CheckResult(
        check.label, status, check.paper, reproduced, None, check.mode, check.note
    )


def evaluate(spec: FigureSpec | None, result: ExperimentResult) -> FigureVerdict:
    """Grade every check of *spec* and fold them into a figure verdict."""
    if spec is None or not spec.checks:
        return FigureVerdict(SHAPE_ONLY, ())
    results = tuple(evaluate_check(check, result) for check in spec.checks)
    worst = max(results, key=lambda r: _SEVERITY[r.status])
    return FigureVerdict(worst.status, results)
