"""Declarative figure specifications for the reproduction report.

Every registered experiment carries a :class:`FigureSpec` describing how
its :class:`~repro.experiments.common.ExperimentResult` becomes a chart
(axes, series extraction, caption) and how it compares to the paper
(reference overlays plus :class:`Check` verdict rules).  The specs live
next to the harnesses in ``src/repro/experiments/`` and are consumed by
:mod:`repro.report.build`; nothing here runs a simulation.

Extraction is table-driven: the helpers below (``rows_as_series``,
``columns_as_series``, ``wide_rows_as_groups`` …) close over column
positions and parse axis values out of header strings, so one spec works
at every scale even though ``quick`` and ``full`` sweeps emit different
column counts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.experiments.common import ExperimentResult

#: ``extract`` signature for line figures: result -> series name -> points.
SeriesExtractor = Callable[[ExperimentResult], dict[str, list[tuple[float, float]]]]
#: ``extract`` signature for bar figures: result -> group -> series -> value.
GroupExtractor = Callable[[ExperimentResult], dict[str, dict[str, float]]]
#: ``metric`` signature for checks: result -> reproduced value (None = no data).
Metric = Callable[[ExperimentResult], "float | None"]

_NUMBER = re.compile(r"-?\d+(?:\.\d+)?")
#: Unsigned variant for axis labels, where "-" separates ("rob-32").
_UNSIGNED = re.compile(r"\d+(?:\.\d+)?")
_SIZE_SUFFIX = {"kb": 1.0, "mb": 1024.0, "k": 1.0, "m": 1024.0}


def parse_axis_value(text: object) -> float | None:
    """Parse an axis coordinate out of a header or row label.

    Understands the label shapes the harness tables use: ``"rob-512"``
    → 512, ``"64KB"`` → 64, ``"4MB"`` → 4096 (sizes normalize to KB),
    ``"OOO-40"`` → 40, ``"INO"`` → 1 (in-order plots as queue size 1 on
    the paper's axes), plain numbers pass through.  Returns ``None`` for
    labels that carry no coordinate (``"sweep gain"``, ``"machine"`` …).
    """
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        return float(text)
    label = str(text).strip()
    if label.upper() == "INO":
        return 1.0
    match = _UNSIGNED.search(label)
    if match is None:
        return None
    value = float(match.group())
    suffix = label[match.end() :].strip().lower()
    if suffix in _SIZE_SUFFIX:
        return value * _SIZE_SUFFIX[suffix]
    if suffix:  # trailing text that is not a size unit: not a coordinate
        return None
    return value


def parse_numeric(value: object, pick: str = "first") -> float | None:
    """Coerce a table cell to a float, tolerating harness formatting.

    Handles plain numbers, ``"1.55x"`` speedups (→ 1.55), and
    ``"67%→77%"`` percentage spans, where *pick* selects the ``"first"``
    or ``"last"`` number and percentages normalize to fractions.  A
    hyphen directly after an alphanumeric character is a separator, not
    a minus sign, so a label like ``"MEM-400"`` reads as 400, never -400.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value)
    numbers = []
    for match in _NUMBER.finditer(text):
        number = match.group()
        if (
            number.startswith("-")
            and match.start() > 0
            and text[match.start() - 1].isalnum()
        ):
            number = number[1:]
        numbers.append(number)
    if not numbers:
        return None
    chosen = numbers[0] if pick == "first" else numbers[-1]
    result = float(chosen)
    if "%" in text:
        result /= 100.0
    return result


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# ----------------------------------------------------------------------
# Series extractors (line figures)
# ----------------------------------------------------------------------


def rows_as_series(label_col: int = 0) -> SeriesExtractor:
    """One series per row; x coordinates parsed from the column headers.

    Fits the sweep tables (fig1/2, fig11/12) whose rows are
    ``[label, y@x1, y@x2, ...]`` under headers like ``rob-32`` or
    ``64KB``; header columns that parse to no coordinate (``"sweep
    gain"``) are skipped, which keeps the spec valid at every scale.
    """

    def _extract(result: ExperimentResult) -> dict[str, list[tuple[float, float]]]:
        xs = [(i, parse_axis_value(h)) for i, h in enumerate(result.headers)]
        xs = [(i, x) for i, x in xs if i != label_col and x is not None]
        series: dict[str, list[tuple[float, float]]] = {}
        for row in result.rows:
            points = [
                (x, float(row[i]))
                for i, x in xs
                if i < len(row) and _is_number(row[i])
            ]
            if points:
                series[str(row[label_col])] = points
        return series

    return _extract


def columns_as_series(label_col: int = 0) -> SeriesExtractor:
    """One series per column; x coordinates parsed from the row labels.

    Fits fig10-style tables whose rows are ``[CP config, y@MP1, y@MP2]``:
    each value column becomes a series named by its header, plotted
    against the coordinate parsed from column *label_col*.
    """

    def _extract(result: ExperimentResult) -> dict[str, list[tuple[float, float]]]:
        series: dict[str, list[tuple[float, float]]] = {}
        for row in result.rows:
            x = parse_axis_value(row[label_col])
            if x is None:
                continue
            for i, header in enumerate(result.headers):
                if i == label_col or i >= len(row) or not _is_number(row[i]):
                    continue
                series.setdefault(str(header), []).append((x, float(row[i])))
        return series

    return _extract


def single_series(name: str, x_col: int = 0, y_col: int = 1) -> SeriesExtractor:
    """One named series from an (x, y) column pair (ablation sweeps)."""

    def _extract(result: ExperimentResult) -> dict[str, list[tuple[float, float]]]:
        points = []
        for row in result.rows:
            x = parse_axis_value(row[x_col])
            y = parse_numeric(row[y_col]) if y_col < len(row) else None
            if x is not None and y is not None:
                points.append((x, y))
        return {name: points} if points else {}

    return _extract


# ----------------------------------------------------------------------
# Group extractors (bar figures)
# ----------------------------------------------------------------------


def long_rows_as_groups(
    group_col: int, series_col: int, value_col: int
) -> GroupExtractor:
    """Long-format rows ``[..group.., ..series.., ..value..]`` to groups.

    Fits fig9: each row names its group (suite) and series (machine) in
    columns, one value per row.
    """

    def _extract(result: ExperimentResult) -> dict[str, dict[str, float]]:
        groups: dict[str, dict[str, float]] = {}
        for row in result.rows:
            value = parse_numeric(row[value_col])
            if value is None:
                continue
            groups.setdefault(str(row[group_col]), {})[str(row[series_col])] = value
        return groups

    return _extract


def wide_rows_as_groups(
    group_col: int, series_cols: Mapping[str, int]
) -> GroupExtractor:
    """Wide-format rows to groups: one group per row, named value columns.

    Fits fig13/14 (``benchmark, max instructions, max registers``) and
    single-bar charts (*series_cols* with one entry).
    """

    def _extract(result: ExperimentResult) -> dict[str, dict[str, float]]:
        groups: dict[str, dict[str, float]] = {}
        for row in result.rows:
            bars = {}
            for name, col in series_cols.items():
                value = parse_numeric(row[col]) if col < len(row) else None
                if value is not None:
                    bars[name] = value
            if bars:
                groups[str(row[group_col])] = bars
        return groups

    return _extract


# ----------------------------------------------------------------------
# Check metrics (reproduced-vs-paper comparisons)
# ----------------------------------------------------------------------


def _column_index(result: ExperimentResult, col: str) -> int | None:
    try:
        return result.headers.index(col)
    except ValueError:
        return None


def _find_row(result: ExperimentResult, where: Mapping[str, object]):
    indexed = []
    for header, wanted in where.items():
        i = _column_index(result, header)
        if i is None:
            return None
        indexed.append((i, str(wanted)))
    for row in result.rows:
        if all(i < len(row) and str(row[i]) == wanted for i, wanted in indexed):
            return row
    return None


def cell(col: str, pick: str = "first", **where: object) -> Metric:
    """Metric: the numeric value of one table cell.

    The row is selected by header-named equality constraints (e.g.
    ``cell("mean IPC", machine="R10-64", suite="SpecFP")``); *pick*
    passes through to :func:`parse_numeric` for cells holding spans.
    """

    def _metric(result: ExperimentResult) -> float | None:
        row = _find_row(result, where)
        i = _column_index(result, col)
        if row is None or i is None or i >= len(row):
            return None
        return parse_numeric(row[i], pick=pick)

    return _metric


def cell_ratio(numerator: Metric, denominator: Metric) -> Metric:
    """Metric: ratio of two other metrics (speedups, relative gains)."""

    def _metric(result: ExperimentResult) -> float | None:
        num = numerator(result)
        den = denominator(result)
        if num is None or den is None or den == 0:
            return None
        return num / den

    return _metric


def row_span_ratio(label: object, label_col: int = 0) -> Metric:
    """Metric: last/first numeric cell of the labelled row.

    The end-to-end gain across a sweep row — e.g. how much IPC the
    MEM-400 configuration recovers from the smallest to the largest
    window — robust to the differing column counts across scales.
    """

    def _metric(result: ExperimentResult) -> float | None:
        for row in result.rows:
            if str(row[label_col]) != str(label):
                continue
            numbers = [float(c) for i, c in enumerate(row) if i != label_col and _is_number(c)]
            if len(numbers) >= 2 and numbers[0]:
                return numbers[-1] / numbers[0]
        return None

    return _metric


def max_row_ratio(num_col: str, den_col: str) -> Metric:
    """Metric: the worst per-row *num_col*/*den_col* ratio.

    Used by the occupancy figures: each benchmark's live registers over
    its live instructions, which the paper argues stays below one — a
    per-row comparison, so one benchmark cannot hide behind another's
    larger peak.  Rows with a zero/missing denominator are skipped.
    """

    def _metric(result: ExperimentResult) -> float | None:
        ni = _column_index(result, num_col)
        di = _column_index(result, den_col)
        if ni is None or di is None:
            return None
        ratios = []
        for row in result.rows:
            if ni >= len(row) or di >= len(row):
                continue
            num = parse_numeric(row[ni])
            den = parse_numeric(row[di])
            if num is None or den is None or den == 0:
                continue
            ratios.append(num / den)
        return max(ratios) if ratios else None

    return _metric


def row_count() -> Metric:
    """Metric: the number of table rows (structural checks)."""
    return lambda result: float(len(result.rows))


# ----------------------------------------------------------------------
# The spec and check records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Check:
    """One reproduced-vs-paper comparison contributing to the verdict.

    *metric* extracts the reproduced value from the result table; *paper*
    is the paper's stated value (or bound).  *mode* selects how the two
    compare:

    - ``"match"`` — relative error against *paper* within ``pass_rel``
      passes, within ``warn_rel`` is within-tolerance, else deviates;
    - ``"at_least"`` / ``"at_most"`` — one-sided qualitative claims
      ("recovers at least 2x", "registers never exceed instructions"),
      where ``warn_rel`` grants the same graded slack past the bound.
    """

    label: str
    paper: float
    metric: Metric
    mode: str = "match"
    pass_rel: float = 0.15
    warn_rel: float = 0.40
    note: str = ""


@dataclass(frozen=True)
class FigureSpec:
    """How one experiment renders and how it compares to the paper.

    *kind* picks the renderer: ``"line"`` (uses *series* + optional
    *reference_series*), ``"bars"`` (uses *groups* + optional
    *reference_points*), or ``"table"`` (no chart — configuration
    tables).  *checks* drive the verdict line; an empty tuple marks a
    shape-only figure for which the paper states no comparable numbers.
    """

    kind: str
    caption: str
    x_label: str = ""
    y_label: str = ""
    logx: bool = False
    series: SeriesExtractor | None = None
    groups: GroupExtractor | None = None
    reference_series: Mapping[str, Sequence[tuple[float, float]]] | None = None
    reference_points: Mapping[tuple[str, str], float] | None = None
    checks: tuple[Check, ...] = field(default=())
