"""SimPoint phases as first-class workloads (the ``phases`` kind).

Two spec forms share the kind word:

* **Single phase** — ``phases(file=PATH,interval=N,index=I)`` replays
  exactly instructions ``[I*N, (I+1)*N)`` of a captured trace through
  the ordinary :class:`~repro.workloads.base.Workload` surface.  Like
  ``trace(...)`` replay it restores the capture's data-region map for
  cache warm-up, ignores the seed (``seed_sensitive=False``), and
  fingerprints over the *decoded trace content* plus the interval
  geometry — deliberately **not** over the clustering parameters, so
  re-analyzing the same capture with a different ``k`` (or clustering
  seed) reuses every phase cell already in the result store.

* **Phase set** — ``phases(file=PATH[,interval=N][,k=K][,seed=S])``
  (no ``index=``) names the whole weighted selection.  It is a
  *sweep-level* token: :func:`expand_phases` runs the SimPoint analysis
  (:func:`repro.simpoint.phases.analyze_trace`) and returns the member
  phase names plus their cluster weights, which the sweep engine crosses
  with the machine/memory axes and folds back into one weighted-mean
  verdict per (machine, memory) cell.  Asking the registry to
  *instantiate* the set form is an error that points at sweeps.

The SimPoint analysis (and hence numpy) is imported lazily inside
:func:`expand_phases`; merely registering the kind — or replaying a
single phase — stays stdlib-only like the rest of the workload layer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.fingerprint import digest
from repro.grammar import (
    SpecError,
    parse_count,
    parse_nonneg,
    parse_spec_string,
    render_spec,
    reject_unknown,
)
from repro.isa import Instruction
from repro.trace.io import TraceFormatError, load_trace, read_trace_regions
from repro.trace.kernel import Kernel
from repro.workloads.base import Workload
from repro.workloads.kinds import WorkloadKind, register_workload_kind
from repro.workloads.tracefile import TraceFileWorkload

#: Interval length (instructions) when a spec names none.
DEFAULT_INTERVAL = 1024
#: Cluster count when a phase-set spec names none.
DEFAULT_K = 4

PHASES_GRAMMAR = (
    "phases(file=PATH[.gz],index=I[,interval=N]) — one phase; "
    "phases(file=PATH[.gz][,interval=N][,k=K][,seed=S]) — weighted set "
    "(sweep workload token)"
)

_PARAMS = frozenset({"file", "interval", "index", "k", "seed"})


class PhaseWorkload(TraceFileWorkload):
    """Replay of one SimPoint interval of a captured trace."""

    suite = "phases"
    description = "replays one SimPoint interval of a captured trace"
    spec_kind = "phases"
    spec_grammar = PHASES_GRAMMAR

    def __init__(
        self,
        path,
        index: int,
        interval: int = DEFAULT_INTERVAL,
        seed: int = 0,
    ) -> None:
        if interval <= 0:
            raise SpecError(
                f"phases: interval must be positive, got {interval}; "
                f"grammar: {PHASES_GRAMMAR}"
            )
        if index < 0:
            raise SpecError(
                f"phases: index must be non-negative, got {index}; "
                f"grammar: {PHASES_GRAMMAR}"
            )
        self.index = index
        self.interval = interval
        super().__init__(path, seed=seed)
        # Canonical spec-string name (overrides the trace(...) name the
        # parent set): round-trips through the grammar, pool workers and
        # cache verify rebuild the identical slice from it.
        self.name = render_spec(
            "phases",
            {"file": self.path, "interval": interval, "index": index},
        )

    # ------------------------------------------------------------------

    @property
    def start(self) -> int:
        """First instruction of this phase in the capture."""
        return self.index * self.interval

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        # Restore the capture's region map so cache warm-up matches the
        # original run, then stream exactly this phase's slice.
        k.space.regions.extend(read_trace_regions(self.path))
        yield from itertools.islice(
            load_trace(self.path), self.start, self.start + self.interval
        )

    def trace(self, n: int) -> list[Instruction]:
        """The first *n* instructions of this phase's slice.

        A phase is at most one interval long; asking for more — or for a
        slice the capture cannot fill (index past the end, or a partial
        tail interval) — raises :class:`TraceFormatError` naming the
        phase geometry instead of the generic unbounded-generator
        complaint.
        """
        try:
            return Workload.trace(self, n)
        except RuntimeError:
            raise TraceFormatError(
                f"{self.path}: phase index={self.index} covers instructions "
                f"[{self.start}, {self.start + self.interval}) and cannot "
                f"supply {n} instruction(s); the capture is too short or "
                "the requested budget exceeds the interval"
            ) from None

    def fingerprint(self) -> str:
        """Content-addressed identity of this phase's slice.

        Covers the decoded capture content plus the interval geometry
        (interval length and index) — and nothing about *how* the phase
        was selected: neither ``k`` nor the clustering seed participates,
        so re-clustering the same capture reuses every already-simulated
        phase cell from the store.
        """
        return digest(
            {
                "__kind__": type(self).__name__,
                "name": "phases",
                "suite": self.suite,
                "trace_version": self.trace_version,
                "content": self.content_digest(),
                "interval": self.interval,
                "index": self.index,
            }
        )


# ----------------------------------------------------------------------
# Phase-set expansion (the sweep engine's entry point)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseExpansion:
    """One phase-set token expanded to its weighted member phases.

    *names* are canonical single-phase workload names (grid cells, store
    keys); *weights* align with them and sum to 1.  The sweep engine
    stores the expansion next to its grid so formatting layers can fold
    per-phase stats back into the SimPoint weighted estimate.
    """

    token: str
    path: str
    interval: int
    k: int
    seed: int
    num_intervals: int
    total_instructions: int
    names: tuple[str, ...]
    weights: tuple[float, ...]

    @property
    def coverage(self) -> float:
        """Fraction of the capture the member phases simulate."""
        if not self.total_instructions:
            return 0.0
        return len(self.names) * self.interval / self.total_instructions


def expand_phases(token: str) -> PhaseExpansion | None:
    """Expand a phase-*set* spec into its members; ``None`` if *token*
    is not one.

    Returns ``None`` for anything that is not a ``phases(...)`` spec or
    that carries ``index=`` (a single, directly instantiable phase).
    For a genuine set token the SimPoint analysis runs (memoized per
    file identity and parameters); malformed parameters raise
    :class:`SpecError` and unreadable/too-short captures raise the
    analysis layer's typed errors.
    """
    try:
        kind, params = parse_spec_string(token)
    except SpecError:
        return None
    if kind.lower() != "phases" or "index" in params:
        return None
    reject_unknown("phases", params, _PARAMS, PHASES_GRAMMAR)
    if "file" not in params:
        raise SpecError(
            f"phases: missing required parameter 'file'; "
            f"grammar: {PHASES_GRAMMAR}"
        )
    interval = parse_count(
        "phases", "interval", params.get("interval", str(DEFAULT_INTERVAL))
    )
    k = parse_count("phases", "k", params.get("k", str(DEFAULT_K)))
    seed = parse_nonneg("phases", "seed", params.get("seed", "0"))
    # The analysis pulls in numpy; import lazily so the workload layer
    # (and single-phase replay) stays stdlib-only.
    from repro.simpoint.phases import analyze_trace

    phase_set = analyze_trace(params["file"], interval=interval, k=k, seed=seed)
    return PhaseExpansion(
        token=token,
        path=phase_set.path,
        interval=interval,
        k=k,
        seed=seed,
        num_intervals=phase_set.num_intervals,
        total_instructions=phase_set.total_instructions,
        names=phase_set.member_specs(),
        weights=phase_set.weights,
    )


# ----------------------------------------------------------------------
# Kind registration
# ----------------------------------------------------------------------


def _parse_phases(params: dict[str, str], seed: int) -> PhaseWorkload:
    reject_unknown("phases", params, _PARAMS, PHASES_GRAMMAR)
    if "file" not in params:
        raise SpecError(
            f"phases: missing required parameter 'file'; "
            f"grammar: {PHASES_GRAMMAR}"
        )
    interval = parse_count(
        "phases", "interval", params.get("interval", str(DEFAULT_INTERVAL))
    )
    if "index" not in params:
        raise SpecError(
            "phases: a spec without index= names the whole weighted phase "
            "set, which only sweeps can run (it expands to one cell per "
            "selected phase); pass it as a sweep workload token, or add "
            f"index=I to replay a single phase; grammar: {PHASES_GRAMMAR}"
        )
    clustering = sorted(set(params) & {"k", "seed"})
    if clustering:
        raise SpecError(
            f"phases: index= names one concrete interval, so the "
            f"clustering parameter(s) {', '.join(clustering)} do not "
            f"apply; grammar: {PHASES_GRAMMAR}"
        )
    index = parse_nonneg("phases", "index", params["index"])
    return PhaseWorkload(params["file"], index, interval, seed=seed)


register_workload_kind(
    WorkloadKind(
        name="phases",
        parse=_parse_phases,
        grammar=PHASES_GRAMMAR,
        description="replay SimPoint-selected phases of a captured trace "
        "(weighted set as a sweep token)",
        seed_sensitive=False,
    )
)
