"""The parametric synthetic workload family (``synth`` kind).

The named SPEC stand-ins (:mod:`repro.workloads.specint` / ``specfp``)
each hard-code one behaviour point; :class:`SynthWorkload` exposes the
underlying knobs as *traits* so sweeps can walk the workload axis of the
paper's design space the way :mod:`repro.machines` walks the machine
axis:

* ``footprint`` — total data size, which sets where the workload lands
  on the L2-size sensitivity curve of Figures 11/12;
* ``chase`` — serial pointer-chase depth: each hop's address comes from
  the previous load, the Section-2 SpecINT misbehaviour that no
  instruction window can overlap (``chase=0`` is pure streaming);
* ``br`` — branch entropy: the probability a data-dependent branch goes
  the rare way (0 = perfectly biased, 0.5 = coin flip), controlling how
  often fetch is redirected behind a possibly-missed load;
* ``mlp`` — independent load streams per iteration (memory-level
  parallelism available to a large window);
* ``ilp`` — independent compute strands between the loads;
* ``stride``, ``stores``, ``hot``, ``fp`` — access stride (elements),
  store probability, hot-region size, and int/fp flavour.

A ``synth`` workload names itself canonically from its non-default
traits (``"synth(chase=8,footprint=1M)"``), so a spec-built instance is
bit-identical — fields, name, trace, store fingerprint — to its
keyword-built twin, and the canonical name round-trips through
:func:`repro.workloads.spec.parse_workload`.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.fingerprint import digest
from repro.grammar import (
    SpecError,
    format_size,
    format_value,
    parse_flag,
    parse_fraction,
    parse_nonneg,
    parse_count,
    parse_size,
    reject_unknown,
    render_spec,
)
from repro.isa import Instruction
from repro.trace.kernel import Kernel
from repro.trace.layout import ArrayRef, LinkedList
from repro.workloads.base import Workload
from repro.workloads.kinds import WorkloadKind, register_workload_kind

KB = 1024
MB = 1024 * KB

SYNTH_GRAMMAR = (
    "synth(footprint=SIZE[K|M], hot=SIZE[K|M], chase=N, br=FRACTION, "
    "ilp=1..8, mlp=1..6, stride=N, stores=FRACTION, fp=on|off)"
)

#: Trait defaults in canonical rendering order (the order trait values
#: appear in a synth workload's canonical name).
DEFAULT_TRAITS = {
    "footprint": 4 * MB,
    "hot": 32 * KB,
    "chase": 0,
    "br": 0.05,
    "ilp": 2,
    "mlp": 2,
    "stride": 1,
    "stores": 0.125,
    "fp": False,
}

_SIZE_TRAITS = frozenset({"footprint", "hot"})

#: Iterations between pointer-chase bursts (mirrors mcf's scan/burst mix).
CHASE_INTERVAL = 4


class SynthWorkload(Workload):
    """One point in the parametric workload space (see module docstring).

    Keyword arguments are the traits of :data:`DEFAULT_TRAITS`; all are
    validated here so spec-built and keyword-built instances share one
    error path.
    """

    suite = "synth"
    description = "parametric synthetic: footprint/chase/br/ilp/mlp knobs"
    trace_version = 1

    def __init__(
        self,
        seed: int = 0,
        *,
        footprint: int = DEFAULT_TRAITS["footprint"],
        hot: int = DEFAULT_TRAITS["hot"],
        chase: int = DEFAULT_TRAITS["chase"],
        br: float = DEFAULT_TRAITS["br"],
        ilp: int = DEFAULT_TRAITS["ilp"],
        mlp: int = DEFAULT_TRAITS["mlp"],
        stride: int = DEFAULT_TRAITS["stride"],
        stores: float = DEFAULT_TRAITS["stores"],
        fp: bool = DEFAULT_TRAITS["fp"],
    ) -> None:
        # Coerce to the canonical trait types up front so keyword-built
        # instances (e.g. chase=4.0) canonicalize, name and fingerprint
        # exactly like their spec-built twins.
        traits = {
            "footprint": int(footprint), "hot": int(hot), "chase": int(chase),
            "br": float(br), "ilp": int(ilp), "mlp": int(mlp),
            "stride": int(stride), "stores": float(stores), "fp": bool(fp),
        }
        self._validate(traits)
        self.traits = traits
        # Instance attribute shadows the ClassVar: synth workloads name
        # themselves canonically from their non-default traits.
        self.name = render_synth_name(traits)
        super().__init__(seed)

    @staticmethod
    def _validate(traits: dict) -> None:
        def bad(message: str) -> SpecError:
            return SpecError(f"synth: {message}; grammar: {SYNTH_GRAMMAR}")

        for key in ("footprint", "hot"):
            if traits[key] < 4 * KB:
                raise bad(f"{key}={traits[key]} must be at least 4K")
        if traits["chase"] < 0 or traits["chase"] > 64:
            raise bad(f"chase={traits['chase']} must be in 0..64")
        for key in ("br", "stores"):
            if not 0.0 <= traits[key] <= 1.0:
                raise bad(f"{key}={traits[key]} must be a fraction in [0, 1]")
        if not 1 <= traits["ilp"] <= 8:
            raise bad(f"ilp={traits['ilp']} must be in 1..8")
        if not 1 <= traits["mlp"] <= 6:
            raise bad(f"mlp={traits['mlp']} must be in 1..6")
        if traits["stride"] < 1:
            raise bad(f"stride={traits['stride']} must be a positive element count")

    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable digest over the full trait assignment (not just the
        canonical name, so a default change bumps affected cells only
        together with :attr:`trace_version`)."""
        return digest(
            {
                "__kind__": type(self).__name__,
                "name": self.name,
                "suite": self.suite,
                "seed": self.seed,
                "trace_version": self.trace_version,
                "traits": self.traits,
            }
        )

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        t = self.traits
        fp = t["fp"]
        chase, br, stores, stride = t["chase"], t["br"], t["stores"], t["stride"]
        # Chase arena and streaming region split the footprint; the hot
        # region is allocated last so the functional warm-up leaves it
        # cache resident (the convention of the named benchmarks).
        arena_bytes = t["footprint"] // 2 if chase else 0
        stream_bytes = t["footprint"] - arena_bytes
        stream = ArrayRef.alloc(k.space, max(1, stream_bytes // 8), 8)
        chain = (
            LinkedList(k.space, nodes=max(1, arena_bytes // 64), node_size=64,
                       rng=k.rng)
            if chase
            else None
        )
        hot = ArrayRef.alloc(k.space, max(1, t["hot"] // 8), 8)
        rng = k.rng
        regs = k.fregs if fp else k.iregs
        vals = regs(t["mlp"])
        accs = regs(t["ilp"])
        (hval,) = regs(1)
        if chain is not None:
            ptr, csum = k.iregs(2)
        op = k.fadd if fp else k.alu
        # mlp independent streams start phase-shifted through the region
        # so their misses never coalesce into one line stream.
        phase = stream.length // len(vals)
        for i in itertools.count():
            for s, val in enumerate(vals):
                yield k.load(val, stream.addr(i * stride + s * phase), fp=fp)
            for j, acc in enumerate(accs):
                yield op(acc, acc, vals[j % len(vals)])
            # Data-dependent branch on the first loaded value: rare
            # direction with probability br (the entropy knob).
            yield k.branch("data", srcs=(vals[0],), taken=rng.random() >= br)
            yield k.load(hval, hot.addr((i * 7) % hot.length), fp=fp)
            if chain is not None and i % CHASE_INTERVAL == 0:
                # Serial chain: each hop's base is the previous hop's
                # value, so misses cannot overlap (Section 2).
                yield k.load(ptr, chain.advance())
                for _hop in range(chase - 1):
                    yield k.load(ptr, chain.advance(), base=ptr)
                yield k.alu(csum, csum, ptr)
                # Miss-dependent branch: reads the just-fetched pointer.
                yield k.branch("chase", srcs=(ptr,), taken=rng.random() >= br)
            if rng.random() < stores:
                yield k.store(vals[0], stream.addr(i * stride), fp=fp)
            yield k.loop_branch("synth")


def render_synth_name(traits: dict) -> str:
    """The canonical name: ``synth`` plus non-default traits in
    :data:`DEFAULT_TRAITS` order (``"synth"`` when all-default)."""
    params = {}
    for key, default in DEFAULT_TRAITS.items():
        value = traits[key]
        if value == default:
            continue
        params[key] = (
            format_size(value) if key in _SIZE_TRAITS else format_value(value)
        )
    return render_spec("synth", params)


def _parse_synth(params: dict[str, str], seed: int) -> SynthWorkload:
    reject_unknown("synth", params, frozenset(DEFAULT_TRAITS), SYNTH_GRAMMAR)
    kwargs: dict = {}
    try:
        for key, value in params.items():
            if key in _SIZE_TRAITS:
                size = parse_size("synth", key, value)
                if size is None:
                    raise SpecError(
                        f"synth: parameter {key}={value!r} must be finite"
                    )
                kwargs[key] = size
            elif key in ("br", "stores"):
                kwargs[key] = parse_fraction("synth", key, value)
            elif key == "chase":
                kwargs[key] = parse_nonneg("synth", key, value)
            elif key == "fp":
                kwargs[key] = parse_flag("synth", key, value)
            else:  # ilp, mlp, stride
                kwargs[key] = parse_count("synth", key, value)
    except SpecError as error:
        if "grammar:" in str(error):
            raise
        raise SpecError(f"{error}; grammar: {SYNTH_GRAMMAR}") from None
    return SynthWorkload(seed=seed, **kwargs)


register_workload_kind(
    WorkloadKind(
        name="synth",
        parse=_parse_synth,
        grammar=SYNTH_GRAMMAR,
        description="parametric synthetic workload (paper's locality/MLP knobs)",
    )
)
