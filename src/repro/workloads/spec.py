"""The workload spec grammar: one string for any workload.

Symmetric with :mod:`repro.machines.spec` and built on the same grammar
core (:mod:`repro.grammar`)::

    workload := BENCH-NAME | KIND | KIND "(" params ")"

``"mcf"`` resolves through the named-benchmark registry (sugar for
``"bench(name=mcf)"``); ``"synth(chase=8,footprint=64M)"`` builds a
parametric :class:`~repro.workloads.synth.SynthWorkload`;
``"trace(file=foo.trc.gz)"`` replays a captured trace.  Parameter
grammars are owned by the kinds themselves
(:mod:`repro.workloads.kinds`); this module owns the surrounding syntax
and the canonical-name round trip: for every workload ``w`` built here,
``parse_workload(w.name)`` rebuilds an identical twin (same fields,
name, trace, and store fingerprint).
"""

from __future__ import annotations

from typing import Mapping

from repro.grammar import SpecError, parse_spec_string, render_spec, split_specs
from repro.workloads.base import Workload
from repro.workloads.kinds import workload_kinds

WORKLOAD_GRAMMAR = (
    "BENCH-NAME (e.g. mcf, swim) or KIND(key=value,...) — "
    "see 'dkip-experiments workloads' for kinds and their parameters"
)


def _known_workloads() -> str:
    from repro.workloads.registry import all_names

    kinds = ", ".join(sorted(workload_kinds()))
    return f"kinds: {kinds}; benchmarks: {', '.join(all_names())}"


def parse_workload(spec: str, seed: int = 0) -> Workload:
    """Parse a workload spec — benchmark name, bare kind, or
    ``kind(...)`` — into a :class:`Workload` instance."""
    from repro.workloads.registry import benchmark_class

    text = spec.strip()
    if "(" not in text:
        cls = benchmark_class(text)
        if cls is not None:
            return cls(seed=seed)
    kind_name, params = parse_spec_string(text)
    kinds = workload_kinds()
    kind = kinds.get(kind_name.lower())
    if kind is None:
        raise SpecError(
            f"unknown workload {spec!r}; expected {WORKLOAD_GRAMMAR} "
            f"({_known_workloads()})"
        )
    try:
        return kind.parse(params, seed)
    except SpecError:
        raise
    except ValueError as error:
        raise SpecError(
            f"{kind.name}: {error}; grammar: {kind.grammar}"
        ) from None


def parse_workloads(text: str, seed: int = 0) -> list[Workload]:
    """Parse a comma-separated list of workload specs (paren-aware)."""
    return [parse_workload(spec, seed=seed) for spec in split_specs(text)]


def apply_workload_params(spec: str, extra: Mapping[str, str]) -> str:
    """Re-render *spec* with *extra* parameters merged in (overriding).

    Sweep workload axes use this to cross one base workload spec with
    axis values: ``apply_workload_params("synth(br=0.2)", {"chase":
    "8"})`` → ``"synth(br=0.2,chase=8)"``.  Only parametric kinds can
    take axes; a named benchmark has no knobs to cross, which is a
    :class:`SpecError` naming the offender.
    """
    from repro.workloads.registry import benchmark_class

    text = spec.strip()
    if not extra:
        return text
    if "(" not in text and benchmark_class(text) is not None:
        raise SpecError(
            f"cannot apply workload axes to benchmark {text!r}; axes need "
            f"a parametric workload kind such as synth(...) "
            f"({_known_workloads()})"
        )
    kind, params = parse_spec_string(text)
    if kind.lower() not in workload_kinds():
        raise SpecError(
            f"unknown workload kind {kind!r} in {spec!r}; "
            f"({_known_workloads()})"
        )
    params.update({str(k): str(v) for k, v in extra.items()})
    return render_spec(kind, params)
