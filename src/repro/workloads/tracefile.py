"""Trace-file replay as a first-class workload (``trace`` kind).

A trace captured with :func:`repro.trace.io.save_trace` (or any file in
the ``repro-trace v1`` format) replays through the same
:class:`~repro.workloads.base.Workload` surface the synthetic
benchmarks use: ``trace(n)`` materializes the first *n* records,
``regions`` restores the capture's data-region map so cache warm-up
matches the original run, and the store fingerprint hashes the *decoded
trace content* — recompressing a file in place (or ``cache verify``-ing
against a byte-identical copy) never reads as drift, but editing one
record always does.  (Store *cell keys* also cover the workload name,
which includes the path, so cells belong to a location; the
content-addressed fingerprint is what detects drift at that location.)

Replay is deliberately seed-insensitive: the instruction stream is
whatever was captured, so every seed produces the identical trace (the
determinism battery asserts exactly that for kinds registered with
``seed_sensitive=False``).
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterator

from repro.fingerprint import digest
from repro.grammar import SpecError, reject_unknown
from repro.isa import Instruction
from repro.trace.io import (
    _READ_ERRORS,
    TraceFormatError,
    _open as _open_trace,
    load_trace,
    read_trace_regions,
)
from repro.trace.kernel import Kernel
from repro.workloads.base import Workload
from repro.workloads.kinds import WorkloadKind, register_workload_kind

TRACE_GRAMMAR = "trace(file=PATH[.gz])"


class TraceFileWorkload(Workload):
    """Replay of one captured trace file."""

    suite = "trace"
    description = "replays a captured repro-trace file"
    trace_version = 1
    #: Kind word and grammar quoted in construction-time errors;
    #: subclasses replaying through other grammars (``phases``) override.
    spec_kind = "trace"
    spec_grammar = TRACE_GRAMMAR

    def __init__(self, path: str | os.PathLike, seed: int = 0) -> None:
        self.path = os.fspath(path)
        # The canonical name must re-parse in pool workers and cache
        # verify; a path the grammar cannot round-trip (spec delimiters)
        # is rejected here, at construction, not mid-sweep in a worker.
        bad = set(self.path) & set(",()")
        if bad:
            raise SpecError(
                f"{self.spec_kind}: file path {self.path!r} contains spec "
                f"delimiter(s) {''.join(sorted(bad))!r}, which the workload "
                f"grammar cannot round-trip; rename or link the file; "
                f"grammar: {self.spec_grammar}"
            )
        if not os.path.exists(self.path):
            raise SpecError(
                f"{self.spec_kind}: file {self.path!r} does not exist; "
                f"grammar: {self.spec_grammar}"
            )
        # Instance attribute shadows the ClassVar; the name is the
        # canonical spec string, so it round-trips through the grammar
        # (and through the process-pool workers, which rebuild workloads
        # from their names).
        self.name = f"trace(file={self.path})"
        self._content_digest: str | None = None
        self._file_regions: list[tuple[int, int]] | None = None
        super().__init__(seed)

    # ------------------------------------------------------------------

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        # Restore the capture's region map onto this kernel's address
        # space so Workload.trace() publishes it for cache warm-up.
        k.space.regions.extend(read_trace_regions(self.path))
        yield from load_trace(self.path)

    def trace(self, n: int) -> list[Instruction]:
        """The first *n* captured instructions.

        Unlike generated workloads, a capture is finite; asking for more
        than it holds is a :class:`TraceFormatError` naming both counts
        rather than the generic unbounded-generator complaint.
        """
        try:
            return super().trace(n)
        except RuntimeError as error:
            raise TraceFormatError(
                f"{self.path}: trace file is shorter than the requested "
                f"{n} instructions ({error})"
            ) from None

    @property
    def regions(self) -> list[tuple[int, int]]:
        """The capture's region map, read straight from the file header
        (no trace materialization needed, unlike generated workloads —
        which also keeps short regionless captures warm-up-safe).  The
        read is cached, emptiness included, so repeated accesses never
        re-open the file."""
        if self._file_regions is None:
            self._file_regions = read_trace_regions(self.path)
        return self._file_regions

    def content_digest(self) -> str:
        """SHA-256 over the decoded trace text (compression-invariant).

        Honours the io contract: a corrupt or unreadable capture raises
        :class:`TraceFormatError`, even though fingerprinting happens at
        store-keying time rather than replay time.
        """
        if self._content_digest is None:
            sha = hashlib.sha256()
            try:
                with _open_trace(self.path, "r") as handle:
                    for chunk in iter(lambda: handle.read(1 << 16), ""):
                        sha.update(chunk.encode("utf-8"))
            except _READ_ERRORS as error:
                raise TraceFormatError(
                    f"{self.path}: corrupt or truncated trace: {error}"
                ) from None
            self._content_digest = sha.hexdigest()
        return self._content_digest

    def fingerprint(self) -> str:
        """Content-addressed identity: the digest covers what the file
        *says* — not where it lives, and not the seed, which replay
        ignores (``seed_sensitive=False``) — so equal decoded content
        always fingerprints identically and any edit reads as drift.
        (Store *cell keys* carry the seed and name separately.)"""
        return digest(
            {
                "__kind__": type(self).__name__,
                "name": "trace",
                "suite": self.suite,
                "trace_version": self.trace_version,
                "content": self.content_digest(),
            }
        )


def _parse_trace(params: dict[str, str], seed: int) -> TraceFileWorkload:
    reject_unknown("trace", params, frozenset({"file"}), TRACE_GRAMMAR)
    if "file" not in params:
        raise SpecError(
            f"trace: missing required parameter 'file'; grammar: {TRACE_GRAMMAR}"
        )
    return TraceFileWorkload(params["file"], seed=seed)


register_workload_kind(
    WorkloadKind(
        name="trace",
        parse=_parse_trace,
        grammar=TRACE_GRAMMAR,
        description="replay a captured trace file (repro.trace.io format)",
        seed_sensitive=False,
    )
)
