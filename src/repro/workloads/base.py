"""Workload base class: deterministic trace generation with caching."""

from __future__ import annotations

import abc
import itertools
import zlib
from typing import ClassVar, Iterator

from repro.fingerprint import digest
from repro.isa import Instruction
from repro.trace.kernel import Kernel


class Workload(abc.ABC):
    """One synthetic benchmark.

    Subclasses set the class attributes and implement :meth:`_run`, an
    *unbounded* generator written against the :class:`~repro.trace.kernel.
    Kernel` DSL.  Determinism contract: two instances with the same seed
    produce identical traces; all randomness must come from ``kernel.rng``.

    ``trace(n)`` materializes (and caches) the first *n* instructions;
    afterwards :attr:`regions` exposes the data regions the workload
    allocated, which the runners use for functional cache warm-up.
    """

    #: Benchmark name as the paper's figures label it (e.g. "mcf").
    name: ClassVar[str] = ""
    #: "int" (SpecINT) or "fp" (SpecFP).
    suite: ClassVar[str] = ""
    #: One-line description of the behaviour being modelled.
    description: ClassVar[str] = ""
    #: Bump in a subclass whenever its generator changes the emitted
    #: trace; cached results keyed on the old fingerprint then miss
    #: instead of replaying stale simulations.
    trace_version: ClassVar[int] = 1

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._cached: list[Instruction] | None = None
        self._regions: list[tuple[int, int]] = []

    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _run(self, k: Kernel) -> Iterator[Instruction]:
        """Unbounded instruction generator (the benchmark's main loop)."""

    # ------------------------------------------------------------------

    def _make_kernel(self) -> Kernel:
        # Mix the benchmark name into the seed so equal user seeds still
        # give every benchmark an independent random stream.
        mixed = zlib.crc32(self.name.encode()) ^ (self.seed * 0x9E3779B1 & 0xFFFFFFFF)
        return Kernel(seed=mixed)

    def instructions(self) -> Iterator[Instruction]:
        """Fresh unbounded trace iterator."""
        kernel = self._make_kernel()
        self._last_kernel = kernel
        return self._run(kernel)

    def trace(self, n: int) -> list[Instruction]:
        """The first *n* instructions, materialized and cached."""
        if self._cached is None or len(self._cached) < n:
            kernel = self._make_kernel()
            generator = self._run(kernel)
            self._cached = list(itertools.islice(generator, n))
            if len(self._cached) < n:
                raise RuntimeError(
                    f"workload {self.name} ended after {len(self._cached)} "
                    f"instructions; generators must be unbounded"
                )
            self._regions = list(kernel.space.regions)
        return self._cached[:n]

    @property
    def regions(self) -> list[tuple[int, int]]:
        """Data regions allocated by the last :meth:`trace` call."""
        if not self._regions:
            # Generate a minimal prefix so allocations happen.
            self.trace(512)
        return self._regions

    def fingerprint(self) -> str:
        """Stable digest of the workload's trace identity.

        The determinism contract makes (generator class, benchmark name,
        seed, trace version) a complete description of the instruction
        stream — the trace itself never needs hashing.
        """
        return digest(
            {
                "__kind__": type(self).__name__,
                "name": self.name,
                "suite": self.suite,
                "seed": self.seed,
                "trace_version": self.trace_version,
            }
        )

    @property
    def footprint(self) -> int:
        """Total allocated bytes (after trace generation)."""
        return sum(size for _, size in self.regions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, seed={self.seed})"
