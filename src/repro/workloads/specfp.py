"""Synthetic SpecFP 2000: fourteen floating-point benchmarks.

Floating-point codes are the paper's showcase: regular loops, highly
predictable branches, and load misses that are *not* on the critical path
when enough instructions can stay in flight (Section 2, Figure 2).  The
generators below model that structure:

* address computation stays short latency, so fetch-ahead converts misses
  into overlapped prefetch-like accesses (memory-level parallelism);
* kernels are emitted *software pipelined* (see
  :mod:`repro.workloads.pipelining`): compute for iteration *i-k* sits next
  to the loads of iteration *i*, which is how Alpha compilers scheduled
  these loops and what lets the paper's in-order Memory Processor stream
  low-locality slices at full width;
* consumer chains of missed loads form the low-locality slices that drain
  through the LLIB, a few instructions per miss.

Working sets range from cache-resident (`mesa`, `sixtrack`, `galgel`,
`facerec`) to multi-megabyte streams (`swim`, `art`, `lucas`, `applu`),
which spreads the L2-size sensitivity of Figure 12 the way the paper's
suite does.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.isa import Instruction
from repro.trace.kernel import Kernel
from repro.trace.layout import ArrayRef
from repro.workloads.base import Workload
from repro.workloads.pipelining import RotatingRegs

KB = 1024
MB = 1024 * KB


class Ammp(Workload):
    """ammp: molecular dynamics.

    Neighbour-list force computation: an index load (the atom id) followed
    by a dependent gather from a ~2 MB coordinate array — a two-load chain
    that contributes to Figure 3's small ~2x-memory-latency peak — then a
    pipelined multiply-add force kernel.
    """

    name = "ammp"
    suite = "fp"
    description = "molecular dynamics: neighbour-list gather + MAC kernel"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        neighbors = ArrayRef.alloc(k.space, 48 * KB, 8)    # 384 KB indices
        coords = ArrayRef.alloc(k.space, 224 * KB, 8)      # 1.75 MB coordinates
        # Hot local-neighbour region: allocated last so warm-up leaves it
        # cache resident.  Neighbour lists are spatially local, so the
        # dependent load of the index-then-gather chain hits here and
        # rarely extends a miss chain; the long-latency traffic comes from
        # the streaming index and coordinate sweeps instead.
        local = ArrayRef.alloc(k.space, 4 * KB, 8)         # 32 KB, hot
        rng = k.rng
        idxs = k.iregs(3)
        rot = RotatingRegs(k, 4, 5)                        # x, y, f, t1, t2
        for i in itertools.count():
            idx = idxs[i % 3]
            x, y, f, _t1, _t2 = rot(i)
            yield k.load(idx, neighbors.addr(i % neighbors.length))
            # Gather depends on the index load.  Most neighbours are local
            # (hot region), but far-field partners land in the cold
            # coordinate array: when the index load also missed, this forms
            # the two-miss chain behind Figure 3's ~2x-latency peak — and
            # the LLIB pressure that makes ammp the largest FP LLIB user in
            # the paper's Figure 14.
            if rng.random() < 0.75:
                gather_addr = local.addr(rng.randrange(local.length))
            else:
                gather_addr = coords.addr(rng.randrange(coords.length))
            yield k.load(x, gather_addr, base=idx, fp=True)
            yield k.load(y, coords.addr((i * 9) % coords.length), fp=True)
            if i >= 1:
                p = rot(i - 1)
                yield k.fmul(p[3], p[0], p[1])             # t1 = x*y
            if i >= 2:
                p = rot(i - 2)
                yield k.fadd(p[4], p[3], p[2])             # t2 = t1+f
            if i >= 3:
                p = rot(i - 3)
                yield k.store(p[4], coords.addr((i * 3) % coords.length), fp=True)
            yield k.loop_branch("force")


class Applu(Workload):
    """applu: implicit PDE solver (SSOR).

    Sweeps five ~1 MB solution arrays with unit stride; each grid point is
    an independent, pipelined block of multiply-adds, so misses overlap
    almost perfectly — the canonical large-window win.
    """

    name = "applu"
    suite = "fp"
    description = "SSOR PDE solver: five-array unit-stride sweeps"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        a = ArrayRef.alloc(k.space, 128 * KB, 8)           # 1 MB each
        b = ArrayRef.alloc(k.space, 128 * KB, 8)
        c = ArrayRef.alloc(k.space, 128 * KB, 8)
        d = ArrayRef.alloc(k.space, 128 * KB, 8)
        rot = RotatingRegs(k, 4, 6)                        # v0,v1,v2,t1,t2,t3
        for i in itertools.count():
            r = rot(i)
            yield k.load(r[0], a.addr(i), fp=True)
            yield k.load(r[1], b.addr(i), fp=True)
            yield k.load(r[2], c.addr(i), fp=True)
            if i >= 1:
                p = rot(i - 1)
                yield k.fmul(p[3], p[0], p[1])             # t1 = v0*v1
                yield k.fadd(p[4], p[1], p[2])             # t2 = v1+v2
            if i >= 2:
                p = rot(i - 2)
                yield k.fadd(p[5], p[3], p[4])             # t3 = t1+t2
            if i >= 3:
                p = rot(i - 3)
                yield k.store(p[5], d.addr(i - 3), fp=True)
            yield k.loop_branch("ssor")


class Apsi(Workload):
    """apsi: mesoscale weather model.

    Mixed-stride sweeps (unit and plane stride) over ~1.5 MB with moderate
    reuse in a work array; mid-pack in both miss rate and ILP.
    """

    name = "apsi"
    suite = "fp"
    description = "weather: mixed-stride sweeps, moderate reuse"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        field = ArrayRef.alloc(k.space, 128 * KB, 8)       # 1 MB
        work = ArrayRef.alloc(k.space, 48 * KB, 8)         # 384 KB (reused)
        rot = RotatingRegs(k, 4, 5)                        # t0,t1,w,s1,s2
        plane = 2048
        for i in itertools.count():
            r = rot(i)
            yield k.load(r[0], field.addr(i), fp=True)
            yield k.load(r[1], field.addr(i + plane), fp=True)   # plane stride
            yield k.load(r[2], work.addr(i % work.length), fp=True)
            if i >= 1:
                p = rot(i - 1)
                yield k.fadd(p[3], p[0], p[1])
            if i >= 2:
                p = rot(i - 2)
                yield k.fmul(p[4], p[3], p[2])
            if i >= 3:
                p = rot(i - 3)
                yield k.store(p[4], work.addr((i - 3 + 7) % work.length), fp=True)
            yield k.loop_branch("column")


class Art(Workload):
    """art: adaptive-resonance neural network.

    Streams the whole ~3 MB F1-layer weight matrix every scan with almost
    no reuse — one of the most memory-bound programs in SPEC2000 and a
    big beneficiary of the D-KIP's never-stall fetch.
    """

    name = "art"
    suite = "fp"
    description = "neural net: 3 MB weight-matrix streaming, minimal reuse"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        weights = ArrayRef.alloc(k.space, 384 * KB, 8)     # 3 MB
        inputs = ArrayRef.alloc(k.space, 2 * KB, 8)        # 16 KB, warm
        rot = RotatingRegs(k, 4, 5)                        # w0,w1,x,m0,m1
        accs = k.fregs(4)
        for i in itertools.count():
            r = rot(i)
            yield k.load(r[0], weights.addr(2 * i), fp=True)
            yield k.load(r[1], weights.addr(2 * i + 1), fp=True)
            yield k.load(r[2], inputs.addr(i % inputs.length), fp=True)
            if i >= 1:
                p = rot(i - 1)
                yield k.fmul(p[3], p[0], p[2])
                yield k.fmul(p[4], p[1], p[2])
            if i >= 2:
                p = rot(i - 2)
                # Four rotating accumulators break the reduction recurrence.
                yield k.fadd(accs[i % 4], accs[i % 4], p[3])
                yield k.fadd(accs[(i + 2) % 4], accs[(i + 2) % 4], p[4])
            yield k.loop_branch("scan")


class Equake(Workload):
    """equake: seismic wave propagation (FEM).

    Sparse matrix-vector product: a column-index load followed by a
    dependent vector gather (two-load chains over ~1.5 MB), interleaved
    with unit-stride matrix streaming.
    """

    name = "equake"
    suite = "fp"
    description = "FEM: sparse MxV with index-then-gather load chains"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        matrix = ArrayRef.alloc(k.space, 128 * KB, 8)      # 1 MB values
        colidx = ArrayRef.alloc(k.space, 32 * KB, 8)       # 256 KB indices
        vector = ArrayRef.alloc(k.space, 16 * KB, 8)       # 128 KB (L2 resident)
        rng = k.rng
        cols = k.iregs(3)
        rot = RotatingRegs(k, 4, 4)                        # m, v, prod, s
        for i in itertools.count():
            col = cols[i % 3]
            r = rot(i)
            yield k.load(r[0], matrix.addr(i), fp=True)
            yield k.load(col, colidx.addr(i % colidx.length))
            # The gathered vector is small enough to stay L2 resident, so
            # the dependent load of the index-then-gather chain rarely
            # extends a miss chain (matching the real program's locality).
            yield k.load(
                r[1], vector.addr(rng.randrange(vector.length)), base=col, fp=True
            )
            if i >= 1:
                p = rot(i - 1)
                yield k.fmul(p[2], p[0], p[1])
            if i >= 2:
                p = rot(i - 2)
                yield k.fadd(p[3], p[2], p[0])
            if i >= 3 and i % 8 == 0:
                p = rot(i - 3)
                yield k.store(p[3], vector.addr((i // 8) % vector.length), fp=True)
            yield k.loop_branch("smvp")


class Facerec(Workload):
    """facerec: face recognition (Gabor wavelets).

    Blocked 2-D convolutions with strong reuse inside a ~640 KB image +
    filter set; mostly L2-resident, so the CP keeps nearly all of it.
    """

    name = "facerec"
    suite = "fp"
    description = "image conv: blocked 2-D reuse, mostly cache resident"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        image = ArrayRef.alloc(k.space, 64 * KB, 8)        # 512 KB
        filt = ArrayRef.alloc(k.space, 16 * KB, 8)         # 128 KB
        rot = RotatingRegs(k, 4, 6)                        # p0,p1,w,m0,m1,s
        row = 256
        for i in itertools.count():
            base = (i * 3) % (image.length - row - 1)
            r = rot(i)
            yield k.load(r[0], image.addr(base), fp=True)
            yield k.load(r[1], image.addr(base + row), fp=True)
            yield k.load(r[2], filt.addr(i % filt.length), fp=True)
            if i >= 1:
                p = rot(i - 1)
                yield k.fmul(p[3], p[0], p[2])
                yield k.fmul(p[4], p[1], p[2])
            if i >= 2:
                p = rot(i - 2)
                yield k.fadd(p[5], p[3], p[4])
            if i >= 3 and i % 4 == 0:
                p = rot(i - 3)
                yield k.store(p[5], image.addr((i * 5) % image.length), fp=True)
            yield k.loop_branch("conv")


class Fma3d(Workload):
    """fma3d: crash simulation (explicit FEM).

    Element arrays (~1.5 MB) visited in batches of contiguous loads, then
    scattered connectivity updates; pipelined multiply-add strings per
    element.
    """

    name = "fma3d"
    suite = "fp"
    description = "crash FEM: element batches + scattered updates"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        elements = ArrayRef.alloc(k.space, 192 * KB, 8)    # 1.5 MB
        nodes = ArrayRef.alloc(k.space, 64 * KB, 8)        # 512 KB
        rng = k.rng
        rot = RotatingRegs(k, 4, 5)                        # e0,e1,f0,f1,s
        for i in itertools.count():
            r = rot(i)
            yield k.load(r[0], elements.addr(3 * i), fp=True)
            yield k.load(r[1], elements.addr(3 * i + 1), fp=True)
            if i >= 1:
                p = rot(i - 1)
                yield k.fmul(p[2], p[0], p[1])
                yield k.fadd(p[3], p[0], p[1])
            if i >= 2:
                p = rot(i - 2)
                yield k.fmul(p[4], p[2], p[3])
            if i >= 3:
                p = rot(i - 3)
                yield k.store(p[4], nodes.addr(rng.randrange(nodes.length)), fp=True)
            yield k.loop_branch("element")


class Galgel(Workload):
    """galgel: Galerkin fluid-dynamics eigenproblem.

    Dense linear algebra on ~384 KB matrices with blocked reuse: almost
    everything hits in a 512 KB L2, making this the most cache-friendly
    SpecFP benchmark — and the one whose LLIB stays nearly empty.
    """

    name = "galgel"
    suite = "fp"
    description = "dense LA: blocked reuse, nearly cache resident"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        matrix = ArrayRef.alloc(k.space, 32 * KB, 8)       # 256 KB
        vec = ArrayRef.alloc(k.space, 16 * KB, 8)          # 128 KB
        rot = RotatingRegs(k, 3, 4)                        # m, v, prod, s
        accs = k.fregs(4)
        for i in itertools.count():
            r = rot(i)
            yield k.load(r[0], matrix.addr((i * 5) % matrix.length), fp=True)
            yield k.load(r[1], vec.addr(i % vec.length), fp=True)
            if i >= 1:
                p = rot(i - 1)
                yield k.fmul(p[2], p[0], p[1])
                yield k.fadd(p[3], p[0], p[1])
            if i >= 2:
                p = rot(i - 2)
                yield k.fadd(accs[i % 4], accs[i % 4], p[2])
                yield k.fmul(accs[(i + 1) % 4], accs[(i + 1) % 4], p[3])
            if i % 16 == 0:
                yield k.store(accs[i % 4], vec.addr((i // 16) % vec.length), fp=True)
            yield k.loop_branch("gemv")


class Lucas(Workload):
    """lucas: Lucas-Lehmer primality testing (FFT squaring).

    Power-of-two strided passes over a ~2 MB array (FFT butterflies):
    large strides touch a new line almost every access, so the miss rate
    is high and bursty; butterflies are independent, so MLP is ample.
    """

    name = "lucas"
    suite = "fp"
    description = "FFT: power-of-two strides over 2 MB, high MLP"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        data = ArrayRef.alloc(k.space, 256 * KB, 8)        # 2 MB
        rot = RotatingRegs(k, 4, 5)                        # re0,im0,re1,tw,s
        for i in itertools.count():
            stride = 1 << (3 + (i % 6))                    # 8..256 elements
            a = (i * 2) % data.length
            b = (a + stride) % data.length
            r = rot(i)
            yield k.load(r[0], data.addr(a), fp=True)
            yield k.load(r[1], data.addr(b), fp=True)
            if i >= 1:
                p = rot(i - 1)
                yield k.fmul(p[2], p[0], p[1])
                yield k.fadd(p[3], p[0], p[1])
            if i >= 2:
                p = rot(i - 2)
                yield k.fadd(p[4], p[2], p[3])
            if i >= 3:
                p = rot(i - 3)
                yield k.store(p[4], data.addr((i - 3) * 2 % data.length), fp=True)
            yield k.loop_branch("butterfly")


class Mesa(Workload):
    """mesa: software 3-D rendering.

    Vertex transform pipeline over a small (~192 KB) vertex buffer: long
    multiply-add strings on cached data, near-peak IPC everywhere — the
    FP benchmark least affected by the memory wall.
    """

    name = "mesa"
    suite = "fp"
    description = "3-D rendering: transform pipeline, cache resident"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        verts = ArrayRef.alloc(k.space, 24 * KB, 8)        # 192 KB
        rot = RotatingRegs(k, 3, 6)                        # vx,vy,vz,t1,t2,t3
        for i in itertools.count():
            r = rot(i)
            yield k.load(r[0], verts.addr(3 * i), fp=True)
            yield k.load(r[1], verts.addr(3 * i + 1), fp=True)
            yield k.load(r[2], verts.addr(3 * i + 2), fp=True)
            if i >= 1:
                p = rot(i - 1)
                yield k.fmul(p[3], p[0], p[1])
                yield k.fmul(p[4], p[1], p[2])
                yield k.fadd(p[5], p[0], p[2])
            if i >= 2:
                p = rot(i - 2)
                yield k.fadd(p[3], p[3], p[4])
                yield k.store(p[5], verts.addr(3 * (i - 2)), fp=True)
            yield k.loop_branch("vertex")


class Mgrid(Workload):
    """mgrid: 3-D multigrid Poisson solver.

    27-point stencils over a ~2 MB grid: unit-stride with plane-strided
    neighbours, strong line reuse within a plane but streaming across
    planes; the archetype of Figure 2's IPC recovery at large windows.
    """

    name = "mgrid"
    suite = "fp"
    description = "multigrid: 3-D stencil, streaming across planes"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        grid = ArrayRef.alloc(k.space, 224 * KB, 8)        # 1.75 MB
        out = ArrayRef.alloc(k.space, 64 * KB, 8)          # 512 KB
        rot = RotatingRegs(k, 5, 6)                        # c,n1,n2,s1,s2,s3
        plane = 4096
        for i in itertools.count():
            r = rot(i)
            yield k.load(r[0], grid.addr(i), fp=True)
            yield k.load(r[1], grid.addr(i + 1), fp=True)
            yield k.load(r[2], grid.addr(i + plane), fp=True)
            if i >= 1:
                p = rot(i - 1)
                yield k.fadd(p[3], p[0], p[1])
            if i >= 2:
                p = rot(i - 2)
                yield k.fadd(p[4], p[3], p[2])
            if i >= 3:
                p = rot(i - 3)
                yield k.fmul(p[5], p[4], p[0])
            if i >= 4:
                p = rot(i - 4)
                yield k.store(p[5], out.addr((i - 4) % out.length), fp=True)
            yield k.loop_branch("stencil")


class Sixtrack(Workload):
    """sixtrack: particle tracking in an accelerator lattice.

    Tight per-particle map evaluation: heavy multiply-add with an
    occasional divide, tiny (~128 KB) working set; compute bound with the
    longest pure-FP dependence chains of the suite (kept deliberately
    unpipelined — the recurrence is physical).
    """

    name = "sixtrack"
    suite = "fp"
    description = "particle tracking: compute bound, FP-div spiced"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        particles = ArrayRef.alloc(k.space, 16 * KB, 8)    # 128 KB
        px, pv, m0, m1, t0, t1 = k.fregs(6)
        for i in itertools.count():
            yield k.load(px, particles.addr(2 * i), fp=True)
            yield k.load(pv, particles.addr(2 * i + 1), fp=True)
            yield k.fmul(m0, px, pv)
            yield k.fadd(m1, px, pv)       # independent of m0
            yield k.fmul(t0, m0, px)
            yield k.fadd(t1, m1, pv)       # independent of t0
            yield k.fadd(m0, t0, t1)
            if i % 16 == 0:
                yield k.fdiv(m1, m0, t0)
            yield k.store(m0, particles.addr(2 * i), fp=True)
            yield k.loop_branch("turn")


class Swim(Workload):
    """swim: shallow-water weather model.

    The classic memory-bound stencil: three ~1.25 MB grids swept with unit
    stride every timestep, no reuse inside the sweep.  The paper's
    headline effect — large windows recovering almost all IPC lost to a
    400-cycle memory — is at its strongest here.
    """

    name = "swim"
    suite = "fp"
    description = "shallow water: ~4 MB of streaming stencils"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        u = ArrayRef.alloc(k.space, 160 * KB, 8)           # 1.25 MB each
        v = ArrayRef.alloc(k.space, 160 * KB, 8)
        p = ArrayRef.alloc(k.space, 160 * KB, 8)
        rot = RotatingRegs(k, 4, 5)                        # u0,v0,p0,t1,t2
        for i in itertools.count():
            r = rot(i)
            yield k.load(r[0], u.addr(i), fp=True)
            yield k.load(r[1], v.addr(i), fp=True)
            yield k.load(r[2], p.addr(i), fp=True)
            if i >= 1:
                q = rot(i - 1)
                yield k.fadd(q[3], q[0], q[1])             # t1 = u+v
            if i >= 2:
                q = rot(i - 2)
                yield k.fmul(q[4], q[3], q[2])             # t2 = t1*p
            if i >= 3:
                q = rot(i - 3)
                yield k.store(q[4], u.addr(i - 3), fp=True)
            yield k.loop_branch("timestep")


class Wupwise(Workload):
    """wupwise: lattice QCD (Wilson fermions).

    3x3 complex matrix-vector products at each lattice site: batches of
    contiguous loads from a ~1.75 MB gauge field followed by dense
    multiply-add blocks — streaming with high arithmetic intensity.
    """

    name = "wupwise"
    suite = "fp"
    description = "lattice QCD: SU(3) MxV, streaming + dense MACs"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        gauge = ArrayRef.alloc(k.space, 224 * KB, 8)       # 1.75 MB
        spinor = ArrayRef.alloc(k.space, 32 * KB, 8)       # 256 KB
        rot = RotatingRegs(k, 4, 6)                        # g0,g1,s0,m0,m1,a
        for i in itertools.count():
            r = rot(i)
            yield k.load(r[0], gauge.addr(2 * i), fp=True)
            yield k.load(r[1], gauge.addr(2 * i + 1), fp=True)
            yield k.load(r[2], spinor.addr(i % spinor.length), fp=True)
            if i >= 1:
                p = rot(i - 1)
                yield k.fmul(p[3], p[0], p[2])
                yield k.fmul(p[4], p[1], p[2])
            if i >= 2:
                p = rot(i - 2)
                yield k.fadd(p[5], p[3], p[4])
            if i >= 3 and i % 4 == 0:
                p = rot(i - 3)
                yield k.store(p[5], spinor.addr((i * 5) % spinor.length), fp=True)
            yield k.loop_branch("site")


#: All SpecFP workload classes in the paper's figure order.
SPECFP_WORKLOADS = [
    Ammp,
    Applu,
    Apsi,
    Art,
    Equake,
    Facerec,
    Fma3d,
    Galgel,
    Lucas,
    Mesa,
    Mgrid,
    Sixtrack,
    Swim,
    Wupwise,
]
