"""Synthetic SpecINT 2000: twelve integer benchmarks.

Each class models the documented kernel behaviour of its namesake — data
structures, access patterns, dependence shapes and branch behaviour.
Unlike SpecFP, integer codes are mostly *cache resident*: the bulk of
their accesses hit a hot region that fits in (or near) the L2, and their
IPC is bounded by branch resolution and dependence chains rather than by
memory bandwidth.  What makes them interesting for this paper are the two
misbehaviours of Section 2 that large instruction windows cannot fix:

* **pointer chasing** — serial chains of cache misses (`mcf`, `gap`,
  `parser`): the next address depends on the previous load, so misses
  cannot overlap;
* **branch mispredictions that depend on uncached data** (`mcf`, `twolf`,
  `gcc`): fetch cannot be redirected until the miss returns, stalling the
  machine for a full memory round trip.

Every benchmark therefore has a *hot* working set (mostly hitting after
warm-up) and, where its namesake warrants it, a *cold* region and one of
the signature pathologies above.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.isa import Instruction
from repro.trace.kernel import Kernel
from repro.trace.layout import ArrayRef, LinkedList
from repro.workloads.base import Workload

KB = 1024
MB = 1024 * KB


class Bzip2(Workload):
    """bzip2: block-sorting compression.

    Sequential byte-stream loads over the current ~256 KB block with a
    Burrows-Wheeler-style permutation lookup (random within the block) and
    run-length comparison branches of moderate predictability.
    """

    name = "bzip2"
    suite = "int"
    description = "block compression: sequential + permuted block access"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        block = ArrayRef.alloc(k.space, 32 * KB, 8)        # 256 KB block
        perm = ArrayRef.alloc(k.space, 16 * KB, 8)         # 128 KB pointers
        rng = k.rng
        val, idx, tmp, acc, run, freq = k.iregs(6)
        for i in itertools.count():
            yield k.load(val, block.addr(i))
            yield k.alu(acc, acc, val)
            yield k.alu(run, run, run)                      # run-length update
            yield k.load(idx, perm.addr((i * 7) % perm.length))
            yield k.alu(tmp, idx, run)
            yield k.alu(freq, freq, tmp)
            yield k.branch("cmp", srcs=(run,), taken=rng.random() < 0.88)
            yield k.alu(acc, acc, freq)
            if i % 4 == 0:
                yield k.store(acc, block.addr(i % block.length))
            yield k.loop_branch("sort")


class Crafty(Workload):
    """crafty: chess search.

    Bitboard arithmetic (dense, mostly independent ALU strings, almost no
    memory traffic) plus a transposition-table probe every few nodes: a
    single random load into a ~1.5 MB hash table whose outcome drives a
    biased branch — crafty's only long-latency events, and an instance of
    the paper's miss-dependent-branch pathology at low intensity.
    """

    name = "crafty"
    suite = "int"
    description = "chess: bitboard ALU work + hash-table probes"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        ttable = ArrayRef.alloc(k.space, 192 * KB, 8)      # 1.5 MB
        board = ArrayRef.alloc(k.space, 4 * KB, 8)         # 32 KB, hot
        rng = k.rng
        b1, b2, b3, b4, key, probe, sq = k.iregs(7)
        for i in itertools.count():
            # Bitboard move generation: independent ALU pairs.
            yield k.load(sq, board.addr(i % board.length))
            yield k.alu(b1, b1, sq)
            yield k.alu(b2, b2, sq)
            yield k.alu(b3, b3, b1)
            yield k.alu(b4, b4, b2)
            yield k.alu(key, b3, b4)
            yield k.branch("legal", srcs=(key,), taken=rng.random() < 0.94)
            yield k.alu(b1, b1, key)
            yield k.alu(b2, b2, key)
            if i % 4 == 0:
                # Transposition-table probe (random line in 1.5 MB).
                yield k.load(probe, ttable.addr(rng.randrange(ttable.length)))
                yield k.branch("tt-hit", srcs=(probe,), taken=rng.random() < 0.9)
            if i % 8 == 0:
                # History/killer-move table update.
                yield k.store(key, board.addr((i * 3) % board.length))
            yield k.loop_branch("search")


class Eon(Workload):
    """eon: C++ probabilistic ray tracer.

    Small working set (scene data in ~192 KB), regular object traversal,
    highly predictable intersection tests; the most cache-friendly of the
    integer suite, approaching the front end's peak on every machine.
    """

    name = "eon"
    suite = "int"
    description = "ray tracing: small working set, regular control"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        scene = ArrayRef.alloc(k.space, 24 * KB, 8)        # 192 KB
        rng = k.rng
        ox, oy, dz, obj, t0, t1 = k.iregs(6)
        for i in itertools.count():
            yield k.load(obj, scene.addr((i * 3) % scene.length))
            yield k.alu(ox, ox, obj)
            yield k.alu(oy, oy, obj)                        # independent of ox
            yield k.alu(t0, ox, oy)
            yield k.alu(t1, obj, oy)                        # independent of t0
            yield k.alu(dz, t0, t1)
            yield k.branch("hit-test", srcs=(dz,), taken=rng.random() < 0.97)
            yield k.alu(ox, ox, t1)
            if i % 8 == 0:
                yield k.store(dz, scene.addr(i % scene.length))
            yield k.loop_branch("ray")


class Gap(Workload):
    """gap: computational group theory.

    Bag-of-objects heap: mostly hot handle arithmetic with a two-hop
    pointer chain into a ~1 MB arena every few objects — a milder version
    of mcf's serial-miss behaviour.
    """

    name = "gap"
    suite = "int"
    description = "group theory: heap handles + occasional pointer chains"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        heap = LinkedList(k.space, nodes=16 * KB, node_size=64, rng=k.rng)  # 1 MB
        handles = ArrayRef.alloc(k.space, 16 * KB, 8)      # 128 KB, hot
        rng = k.rng
        ptr, handle, val, acc, t0 = k.iregs(5)
        for i in itertools.count():
            yield k.load(handle, handles.addr((i * 5) % handles.length))
            yield k.alu(val, handle, acc)
            yield k.alu(t0, handle, val)
            yield k.alu(acc, acc, t0)
            yield k.branch("type", srcs=(val,), taken=rng.random() < 0.92)
            if i % 4 == 0:
                # Two-hop chain: the second load's base is the first's
                # destination, so a miss pair serializes.
                yield k.load(ptr, heap.advance())
                yield k.load(val, heap.advance(), base=ptr)
                yield k.alu(acc, acc, val)
            if i % 6 == 0:
                yield k.store(acc, handles.addr(i % handles.length))
            yield k.loop_branch("obj")


class Gcc(Workload):
    """gcc: optimizing compiler.

    A hot ~256 KB flow-graph region with dense, middling-predictability
    branching, plus excursions into a cold ~2 MB RTL arena whose fetched
    values feed a branch — the miss-dependent-branch pathology at moderate
    rate.
    """

    name = "gcc"
    suite = "int"
    description = "compiler: hot flow graph + cold 2 MB RTL, branch dense"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        rtl = ArrayRef.alloc(k.space, 256 * KB, 8)         # 2 MB, cold
        # Hot region allocated last so warm-up leaves it cache resident.
        flow = ArrayRef.alloc(k.space, 32 * KB, 8)         # 256 KB, hot
        rng = k.rng
        node, op, flags, acc, t0 = k.iregs(5)
        for i in itertools.count():
            yield k.load(flags, flow.addr((i * 5) % flow.length))
            yield k.alu(op, flags, acc)
            yield k.alu(t0, flags, flags)
            yield k.branch("opcode", srcs=(op,), taken=rng.random() < 0.88)
            yield k.alu(acc, acc, t0)
            yield k.alu(node, op, t0)
            yield k.alu(t0, node, acc)
            yield k.alu(op, op, node)
            yield k.branch("flag", srcs=(t0,), taken=rng.random() < 0.91)
            if i % 6 == 0:
                # Cold RTL walk: fetched value drives the next decision.
                yield k.load(node, rtl.addr(rng.randrange(rtl.length)))
                yield k.branch("pattern", srcs=(node,), taken=rng.random() < 0.9)
                yield k.alu(acc, acc, node)
            if i % 5 == 0:
                yield k.store(acc, flow.addr(i % flow.length))
            yield k.loop_branch("pass")


class Gzip(Workload):
    """gzip: LZ77 compression.

    Hash-head lookup followed by a chain probe inside a hot 256 KB sliding
    window, then byte-compare branches; high hit rates once the window is
    warm, so gzip is throughput- rather than latency-bound.
    """

    name = "gzip"
    suite = "int"
    description = "LZ77: hash chains inside a 256 KB window"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        window = ArrayRef.alloc(k.space, 32 * KB, 8)       # 256 KB
        heads = ArrayRef.alloc(k.space, 8 * KB, 8)         # 64 KB
        rng = k.rng
        h, pos, match, length, t0 = k.iregs(5)
        for i in itertools.count():
            yield k.alu(h, h, pos)                          # hash update
            yield k.load(pos, heads.addr((i * 3) % heads.length))
            yield k.load(match, window.addr((i * 11) % window.length))
            yield k.alu(length, match, h)
            yield k.alu(t0, match, pos)
            yield k.branch("match-len", srcs=(length,), taken=rng.random() < 0.9)
            yield k.alu(length, length, t0)
            if i % 3 == 0:
                yield k.store(length, window.addr((i * 13) % window.length))
            yield k.loop_branch("deflate")


class Mcf(Workload):
    """mcf: network-simplex minimum-cost flow — the pointer chaser.

    The pricing sweep scans a hot arc array (plain ILP), but every
    iteration ends in a pointer-chase burst over a ~3 MB arena: each hop's
    address comes from the previous load, so the misses serialize into
    chains no instruction window can overlap (Section 2's first
    misbehaviour).  The cost-comparison branch reads the fetched node, so
    a mispredict on uncached data stalls fetch for the full memory latency
    (the second misbehaviour).  This is the benchmark that fills the
    integer LLIB in Figure 13.
    """

    name = "mcf"
    suite = "int"
    description = "min-cost flow: pointer-chase bursts over 3 MB"

    #: Dependent hops per pointer-chase burst.
    CHAIN_LENGTH = 3
    #: Sequential arc-scan iterations between chase bursts.
    SCAN_ITERATIONS = 3

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        arcs = LinkedList(k.space, nodes=48 * KB, node_size=64, rng=k.rng)  # 3 MB
        basin = ArrayRef.alloc(k.space, 48 * KB, 8)        # 384 KB arc array
        rng = k.rng
        ptr, cost, best, flow, red = k.iregs(5)
        for i in itertools.count():
            # Pricing sweep: sequential scans of the arc array (mostly
            # cache hits, plain ILP).
            for j in range(self.SCAN_ITERATIONS):
                yield k.load(cost, basin.addr((i * 3 + j) % basin.length))
                yield k.alu(red, red, cost)
                yield k.alu(best, cost, best)
                yield k.branch("admissible", srcs=(red,), taken=rng.random() < 0.94)
            # Burst start: pivot from the scan (address known immediately,
            # so different bursts can overlap in a large window).
            yield k.load(ptr, basin.addr(i % basin.length))
            yield k.alu(flow, flow, ptr)
            for _hop in range(self.CHAIN_LENGTH):
                # Serial chain: each hop's base is the previous hop's value.
                yield k.load(ptr, arcs.advance(), base=ptr)
                yield k.alu(cost, ptr, best)
            # Cost comparison on just-fetched (usually uncached) data.
            yield k.branch("price", srcs=(cost,), taken=rng.random() < 0.92)
            yield k.alu(flow, flow, best)
            if i % 8 == 0:
                yield k.store(flow, arcs.current())
            yield k.loop_branch("simplex")


class Parser(Workload):
    """parser: link-grammar natural-language parser.

    Hot dictionary-expression evaluation with a hard backtracking branch,
    plus a pointer hop into a cold ~1 MB dictionary every several words —
    both pathologies at mild intensity over a branchy core.
    """

    name = "parser"
    suite = "int"
    description = "NL parsing: branchy core + cold dictionary chains"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        dictionary = LinkedList(k.space, nodes=16 * KB, node_size=64, rng=k.rng)
        exprs = ArrayRef.alloc(k.space, 24 * KB, 8)        # 192 KB, hot
        rng = k.rng
        ptr, entry, score, depth, t0 = k.iregs(5)
        for i in itertools.count():
            yield k.load(entry, exprs.addr((i * 3) % exprs.length))
            yield k.alu(score, entry, depth)
            yield k.alu(t0, entry, score)
            # Backtracking decision: hard to predict but short latency.
            yield k.branch("backtrack", srcs=(score,), taken=rng.random() < 0.82)
            yield k.alu(depth, depth, t0)
            if i % 5 == 0:
                # Cold dictionary hop (value feeds the next comparison).
                yield k.load(ptr, dictionary.advance())
                yield k.load(entry, dictionary.advance(), base=ptr)
                yield k.alu(score, score, entry)
            if i % 7 == 0:
                yield k.store(depth, exprs.addr(i % exprs.length))
            yield k.loop_branch("parse")


class Perlbmk(Workload):
    """perlbmk: Perl interpreter.

    Bytecode dispatch over a warm opcode stream with the least predictable
    branch of the suite (indirect dispatch approximated by a low-bias
    conditional), operand loads from a warm ~256 KB pad, and stack
    arithmetic.
    """

    name = "perlbmk"
    suite = "int"
    description = "interpreter: bytecode dispatch, hard branches"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        bytecode = ArrayRef.alloc(k.space, 8 * KB, 8)      # 64 KB, warm
        pad = ArrayRef.alloc(k.space, 32 * KB, 8)          # 256 KB
        rng = k.rng
        op, a, b, sp, t0 = k.iregs(5)
        for i in itertools.count():
            yield k.load(op, bytecode.addr(i % bytecode.length))
            # Dispatch: modelled as a hard conditional on the opcode.
            yield k.branch("dispatch", srcs=(op,), taken=rng.random() < 0.75)
            yield k.load(a, pad.addr((i * 9) % pad.length))
            yield k.alu(b, a, op)
            yield k.alu(t0, a, sp)
            yield k.alu(sp, sp, b)
            yield k.alu(b, b, t0)
            yield k.store(b, pad.addr((i * 9) % pad.length))
            yield k.loop_branch("vm")


class Twolf(Workload):
    """twolf: standard-cell place and route.

    Simulated annealing: hot cell lookups plus a cold ~1 MB net structure
    whose fetched cost feeds the accept/reject branch — a data-dependent
    branch behind (sometimes) uncached loads.
    """

    name = "twolf"
    suite = "int"
    description = "place&route: hot cells + cold nets, accept branches"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        nets = ArrayRef.alloc(k.space, 128 * KB, 8)        # 1 MB, cold
        # Hot region allocated last so warm-up leaves it cache resident.
        cells = ArrayRef.alloc(k.space, 24 * KB, 8)        # 192 KB, hot
        rng = k.rng
        c1, c2, cost, temp, t0 = k.iregs(5)
        for i in itertools.count():
            yield k.load(c1, cells.addr((i * 7) % cells.length))
            yield k.alu(cost, c1, temp)
            yield k.alu(t0, c1, cost)
            yield k.branch("feasible", srcs=(cost,), taken=rng.random() < 0.9)
            yield k.alu(temp, temp, t0)
            if i % 5 == 0:
                # Cold net lookup; the accept branch reads its value.
                yield k.load(c2, nets.addr(rng.randrange(nets.length)))
                yield k.alu(cost, c2, temp)
                yield k.branch("accept", srcs=(cost,), taken=rng.random() < 0.8)
            if i % 4 == 0:
                yield k.store(cost, cells.addr((i * 7) % cells.length))
            yield k.loop_branch("anneal")


class Vortex(Workload):
    """vortex: object-oriented database.

    Object traversal over a hot ~512 KB mapped store: single-hop loads
    with well-predicted type checks and bursts of field arithmetic; the
    best behaved of the pointer-style benchmarks.
    """

    name = "vortex"
    suite = "int"
    description = "OO database: object graph traversal, predictable checks"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        store = ArrayRef.alloc(k.space, 64 * KB, 8)        # 512 KB
        rng = k.rng
        obj, fld, key, acc, t0 = k.iregs(5)
        for i in itertools.count():
            yield k.load(obj, store.addr((i * 13) % store.length))
            yield k.branch("type-ok", srcs=(obj,), taken=rng.random() < 0.96)
            yield k.load(fld, store.addr((i * 17) % store.length))
            yield k.alu(key, fld, acc)
            yield k.alu(t0, fld, obj)
            yield k.alu(acc, acc, key)
            yield k.alu(key, key, t0)
            if i % 5 == 0:
                yield k.store(acc, store.addr((i * 23) % store.length))
            yield k.loop_branch("txn")


class Vpr(Workload):
    """vpr: FPGA placement.

    Random swaps over a hot ~512 KB routing-resource graph with a
    moderately biased accept branch on computed (short-latency) deltas;
    similar shape to twolf but without the cold-region excursions.
    """

    name = "vpr"
    suite = "int"
    description = "FPGA placement: random RR-graph access + swap branches"

    def _run(self, k: Kernel) -> Iterator[Instruction]:
        rr_graph = ArrayRef.alloc(k.space, 64 * KB, 8)     # 512 KB
        rng = k.rng
        n1, n2, delta, best, t0 = k.iregs(5)
        for i in itertools.count():
            yield k.load(n1, rr_graph.addr((i * 19) % rr_graph.length))
            yield k.load(n2, rr_graph.addr((i * 29) % rr_graph.length))
            yield k.alu(delta, n1, n2)
            yield k.alu(t0, n1, best)
            yield k.branch("swap", srcs=(delta,), taken=rng.random() < 0.85)
            yield k.alu(best, best, t0)
            yield k.alu(delta, delta, best)
            if i % 6 == 0:
                yield k.store(best, rr_graph.addr((i * 19) % rr_graph.length))
            yield k.loop_branch("place")


#: All SpecINT workload classes in the paper's figure order.
SPECINT_WORKLOADS = [
    Bzip2,
    Crafty,
    Eon,
    Gap,
    Gcc,
    Gzip,
    Mcf,
    Parser,
    Perlbmk,
    Twolf,
    Vortex,
    Vpr,
]
