"""Workloads: named SPEC2000 stand-ins plus declarative workload kinds.

The paper evaluates all of SPEC2000 (12 SpecINT + 14 SpecFP benchmarks,
200M-instruction SimPoint samples of Alpha binaries).  Those binaries and
traces are not redistributable, so this package re-creates each benchmark
as a *synthetic workload*: a deterministic generator emitting an
instruction stream whose dependence structure, memory footprint, access
pattern and branch behaviour model the published characteristics of the
original program.

What matters for this paper is *execution locality* — which instructions
end up waiting on off-chip memory — so each generator is explicit about:

* working-set size and access pattern (streaming, blocked reuse, random,
  pointer chasing), which set the L2 miss behaviour across the cache sweep
  of Figures 11/12;
* dependence chains from loads (who consumes a missed value, and whether
  misses chain serially as in `mcf`'s pointer walks);
* branch behaviour (loop branches, biased data-dependent branches, and
  branches that read loaded values — the ones whose mispredictions cost a
  full memory round trip).

Beyond the named benchmarks, the declarative layer
(:mod:`repro.workloads.kinds` + :mod:`repro.workloads.spec`) makes
workloads *data*, symmetric with :mod:`repro.machines`: a spec grammar
(``"synth(footprint=64M,chase=8)"``, ``"trace(file=foo.trc.gz)"``), the
parametric :class:`~repro.workloads.synth.SynthWorkload` family,
trace-file replay, and SimPoint phase replay
(``"phases(file=foo.trc.gz,...)"`` — :mod:`repro.workloads.phases`,
weighted sets expanding through sweeps).  :func:`get_workload` accepts
names and specs alike.
"""

from repro.workloads.base import Workload
from repro.workloads.phases import PhaseExpansion, PhaseWorkload, expand_phases
from repro.workloads.kinds import (
    WorkloadKind,
    ensure_builtin_workload_kinds,
    get_workload_kind,
    register_workload_kind,
    workload_kinds,
)
from repro.workloads.registry import (
    SPECFP_NAMES,
    SPECINT_NAMES,
    all_names,
    benchmark_class,
    get_workload,
    suite,
)
from repro.workloads.spec import (
    WORKLOAD_GRAMMAR,
    apply_workload_params,
    parse_workload,
    parse_workloads,
)

__all__ = [
    "SPECFP_NAMES",
    "SPECINT_NAMES",
    "WORKLOAD_GRAMMAR",
    "PhaseExpansion",
    "PhaseWorkload",
    "Workload",
    "WorkloadKind",
    "all_names",
    "expand_phases",
    "apply_workload_params",
    "benchmark_class",
    "ensure_builtin_workload_kinds",
    "get_workload",
    "get_workload_kind",
    "parse_workload",
    "parse_workloads",
    "register_workload_kind",
    "suite",
    "workload_kinds",
]
