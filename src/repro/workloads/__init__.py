"""Synthetic SPEC2000: one generator per benchmark the paper simulates.

The paper evaluates all of SPEC2000 (12 SpecINT + 14 SpecFP benchmarks,
200M-instruction SimPoint samples of Alpha binaries).  Those binaries and
traces are not redistributable, so this package re-creates each benchmark
as a *synthetic workload*: a deterministic generator emitting an
instruction stream whose dependence structure, memory footprint, access
pattern and branch behaviour model the published characteristics of the
original program.

What matters for this paper is *execution locality* — which instructions
end up waiting on off-chip memory — so each generator is explicit about:

* working-set size and access pattern (streaming, blocked reuse, random,
  pointer chasing), which set the L2 miss behaviour across the cache sweep
  of Figures 11/12;
* dependence chains from loads (who consumes a missed value, and whether
  misses chain serially as in `mcf`'s pointer walks);
* branch behaviour (loop branches, biased data-dependent branches, and
  branches that read loaded values — the ones whose mispredictions cost a
  full memory round trip).

Use :func:`get_workload` / :func:`suite` to instantiate them.
"""

from repro.workloads.base import Workload
from repro.workloads.registry import (
    SPECFP_NAMES,
    SPECINT_NAMES,
    all_names,
    get_workload,
    suite,
)

__all__ = [
    "Workload",
    "SPECINT_NAMES",
    "SPECFP_NAMES",
    "all_names",
    "get_workload",
    "suite",
]
