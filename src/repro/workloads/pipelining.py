"""Register rotation for software-pipelined workload kernels.

Scientific FP loops, as compiled for Alpha-class machines, are unrolled and
software pipelined: the loads of iteration *i* sit next to the compute of
iteration *i-1* and the stores of iteration *i-2*, so adjacent instructions
are independent and an in-order machine can stream them at full width.
This is load-bearing for the reproduction: the paper's Memory Processor is
*in order* (Figure 10 shows OOO MP buys only ~1-6%), which is only possible
because the low-locality slices of SpecFP arrive pre-scheduled this way.

:class:`RotatingRegs` provides the modulo register renaming such kernels
need: a register set per pipeline slot, recycled every ``slots`` iterations
(long after the previous use is dead).
"""

from __future__ import annotations

from repro.trace.kernel import Kernel


class RotatingRegs:
    """Modulo-rotated register sets for software-pipelined loops."""

    def __init__(self, kernel: Kernel, slots: int, per_slot: int, fp: bool = True) -> None:
        if slots <= 0 or per_slot <= 0:
            raise ValueError("slots and per_slot must be positive")
        alloc = kernel.fregs if fp else kernel.iregs
        self._slots = [alloc(per_slot) for _ in range(slots)]

    @property
    def slots(self) -> int:
        return len(self._slots)

    def __call__(self, iteration: int) -> list[int]:
        """Register set of pipeline slot ``iteration mod slots``."""
        return self._slots[iteration % len(self._slots)]
