"""The workload-kind registry: every instantiable workload family.

Symmetric with :mod:`repro.machines.registry`: a *kind* is one family of
workloads described by a :class:`WorkloadKind` record whose ``parse``
hook builds a :class:`~repro.workloads.base.Workload` from the key/value
parameters of a spec string (:func:`repro.workloads.spec.parse_workload`
handles the surrounding grammar).  Built-in kinds:

* ``bench`` — the named synthetic SPEC2000 benchmarks
  (``bench(name=mcf)``; bare benchmark names are sugar for this kind);
* ``synth`` — the parametric synthetic family whose traits map onto the
  paper's locality/MLP knobs (:mod:`repro.workloads.synth`);
* ``trace`` — replay of a captured trace file
  (:mod:`repro.workloads.tracefile`);
* ``phases`` — replay of SimPoint-selected trace phases, single phases
  directly and weighted sets through sweeps (:mod:`repro.workloads.phases`).

Kinds register themselves from the module that owns their constructor at
import time; :func:`ensure_builtin_workload_kinds` imports those modules
lazily so this module stays import-cycle-free and external code can
register additional kinds before or after.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.base import Workload


@dataclass(frozen=True)
class WorkloadKind:
    """One registered workload family."""

    #: Registry key and the kind word of the spec grammar (lowercase).
    name: str
    #: ``parse(params: dict[str, str], seed: int) -> Workload``.
    parse: Callable[[dict[str, str], int], "Workload"]
    #: Human-readable spec grammar, e.g. ``"synth(chase=N, br=F, ...)"``.
    grammar: str = ""
    #: One-line human description (the ``workloads`` subcommand).
    description: str = ""
    #: Whether different seeds are guaranteed to produce different
    #: traces.  Trace-file replay (and any purely structural generator)
    #: is seed-insensitive; the determinism test battery asserts the
    #: matching behaviour either way.
    seed_sensitive: bool = True


_KINDS: dict[str, WorkloadKind] = {}

#: Modules that self-register the built-in kinds when imported.
_BUILTIN_MODULES = (
    "repro.workloads.registry",   # the `bench` kind (named benchmarks)
    "repro.workloads.synth",
    "repro.workloads.tracefile",
    "repro.workloads.phases",
)


def register_workload_kind(kind: WorkloadKind) -> WorkloadKind:
    """Register *kind* (idempotent; re-registration replaces).

    Kind names are the kind words of the spec grammar, which lookups
    lowercase; a name that is not already lowercase would be listed but
    unreachable, so it is rejected here.
    """
    if not kind.name or kind.name != kind.name.lower():
        raise ValueError(
            f"workload kind name {kind.name!r} must be non-empty lowercase "
            "(spec grammar kind words are case-insensitive at lookup)"
        )
    _KINDS[kind.name] = kind
    return kind


def ensure_builtin_workload_kinds() -> None:
    """Import the constructor modules so the built-in kinds exist."""
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def workload_kinds() -> dict[str, WorkloadKind]:
    """All registered kinds, keyed by name (registration order)."""
    ensure_builtin_workload_kinds()
    return dict(_KINDS)


def get_workload_kind(name: str) -> WorkloadKind:
    """The kind registered under *name* (case-insensitive)."""
    ensure_builtin_workload_kinds()
    kind = _KINDS.get(name.lower())
    if kind is None:
        raise ValueError(
            f"unknown workload kind {name!r}; registered kinds: "
            f"{', '.join(sorted(_KINDS))}"
        )
    return kind
