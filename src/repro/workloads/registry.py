"""Workload registry: lookup by name or spec, suite enumeration.

The named-benchmark table (the paper's 26 SPEC2000 stand-ins) doubles as
the ``bench`` workload kind of :mod:`repro.workloads.kinds`, so the
declarative layer covers it like any other family:
``get_workload("mcf")``, ``get_workload("bench(name=mcf)")`` and
``get_workload("synth(chase=8)")`` all resolve through one path.
"""

from __future__ import annotations

from repro.grammar import SpecError, reject_unknown
from repro.workloads.base import Workload
from repro.workloads.kinds import WorkloadKind, register_workload_kind
from repro.workloads.specfp import SPECFP_WORKLOADS
from repro.workloads.specint import SPECINT_WORKLOADS

_REGISTRY: dict[str, type[Workload]] = {
    cls.name: cls for cls in SPECINT_WORKLOADS + SPECFP_WORKLOADS
}

#: SpecINT benchmark names in the paper's figure order.
SPECINT_NAMES: tuple[str, ...] = tuple(cls.name for cls in SPECINT_WORKLOADS)

#: SpecFP benchmark names in the paper's figure order.
SPECFP_NAMES: tuple[str, ...] = tuple(cls.name for cls in SPECFP_WORKLOADS)

BENCH_GRAMMAR = "bench(name=BENCH) or the bare benchmark name (e.g. mcf)"


def all_names() -> tuple[str, ...]:
    """Every benchmark name, SpecINT first (as in the paper's tables)."""
    return SPECINT_NAMES + SPECFP_NAMES


def benchmark_class(name: str) -> type[Workload] | None:
    """The named benchmark's class, or ``None`` for non-benchmarks."""
    return _REGISTRY.get(name)


def get_workload(name: str, seed: int = 0) -> Workload:
    """Instantiate the workload called *name*.

    *name* is a benchmark name (``"mcf"``) or any workload spec string
    (``"synth(chase=8)"``, ``"trace(file=foo.trc.gz)"``); specs resolve
    through :func:`repro.workloads.spec.parse_workload`, so everything
    that rebuilds workloads from names — the process-pool workers, the
    store's ``cache verify`` — transparently supports every kind.
    """
    cls = _REGISTRY.get(name)
    if cls is not None:
        return cls(seed=seed)
    from repro.workloads.spec import parse_workload

    # Every parse failure is a SpecError (a ValueError) whose message
    # already lists the registered kinds and benchmark names.
    return parse_workload(name, seed=seed)


def suite(which: str, seed: int = 0) -> list[Workload]:
    """All workloads of suite ``"int"`` or ``"fp"``."""
    if which == "int":
        names = SPECINT_NAMES
    elif which == "fp":
        names = SPECFP_NAMES
    else:
        raise ValueError(f"suite must be 'int' or 'fp', got {which!r}")
    return [get_workload(name, seed=seed) for name in names]


def _parse_bench(params: dict[str, str], seed: int) -> Workload:
    reject_unknown("bench", params, frozenset({"name"}), BENCH_GRAMMAR)
    if "name" not in params:
        raise SpecError(
            f"bench: missing required parameter 'name'; grammar: {BENCH_GRAMMAR}"
        )
    cls = _REGISTRY.get(params["name"])
    if cls is None:
        raise SpecError(
            f"bench: unknown benchmark {params['name']!r}; available: "
            f"{', '.join(all_names())}"
        )
    return cls(seed=seed)


register_workload_kind(
    WorkloadKind(
        name="bench",
        parse=_parse_bench,
        grammar=BENCH_GRAMMAR,
        description="the paper's named SPEC2000 stand-ins (12 int + 14 fp)",
    )
)
