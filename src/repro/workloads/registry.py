"""Workload registry: lookup by name, suite enumeration."""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.specfp import SPECFP_WORKLOADS
from repro.workloads.specint import SPECINT_WORKLOADS

_REGISTRY: dict[str, type[Workload]] = {
    cls.name: cls for cls in SPECINT_WORKLOADS + SPECFP_WORKLOADS
}

#: SpecINT benchmark names in the paper's figure order.
SPECINT_NAMES: tuple[str, ...] = tuple(cls.name for cls in SPECINT_WORKLOADS)

#: SpecFP benchmark names in the paper's figure order.
SPECFP_NAMES: tuple[str, ...] = tuple(cls.name for cls in SPECFP_WORKLOADS)


def all_names() -> tuple[str, ...]:
    """Every benchmark name, SpecINT first (as in the paper's tables)."""
    return SPECINT_NAMES + SPECFP_NAMES


def get_workload(name: str, seed: int = 0) -> Workload:
    """Instantiate the benchmark called *name*."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {', '.join(all_names())}"
        ) from None
    return cls(seed=seed)


def suite(which: str, seed: int = 0) -> list[Workload]:
    """All workloads of suite ``"int"`` or ``"fp"``."""
    if which == "int":
        names = SPECINT_NAMES
    elif which == "fp":
        names = SPECFP_NAMES
    else:
        raise ValueError(f"suite must be 'int' or 'fp', got {which!r}")
    return [get_workload(name, seed=seed) for name in names]
