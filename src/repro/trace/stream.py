"""Utilities over instruction streams.

A *trace* is any iterable of :class:`~repro.isa.Instruction`.  Workloads
produce unbounded generators; experiments slice them with :func:`take` or
materialize a fixed-length prefix once and replay it against many machine
configurations (instructions are immutable, so sharing is safe).
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.isa import Instruction


def take(trace: Iterable[Instruction], n: int) -> Iterator[Instruction]:
    """Yield the first *n* instructions of *trace*."""
    return itertools.islice(iter(trace), n)


def materialize(trace: Iterable[Instruction], n: int) -> list[Instruction]:
    """Materialize the first *n* instructions as a list.

    Experiments that evaluate several machine configurations on the same
    workload should materialize the trace once and pass the list to every
    simulator; regeneration dominates runtime otherwise.
    """
    out = list(take(trace, n))
    if len(out) < n:
        raise ValueError(
            f"trace ended after {len(out)} instructions; {n} were requested"
        )
    return out


def replay(instructions: Sequence[Instruction]) -> Iterator[Instruction]:
    """Iterate a materialized trace (counterpart of :func:`materialize`)."""
    return iter(instructions)


class TraceRecorder:
    """Tee adapter recording every instruction that flows through it."""

    def __init__(self, trace: Iterable[Instruction]) -> None:
        self._trace = iter(trace)
        self.recorded: list[Instruction] = []

    def __iter__(self) -> Iterator[Instruction]:
        for instr in self._trace:
            self.recorded.append(instr)
            yield instr


@dataclass
class TraceSummary:
    """Aggregate statistics of a trace prefix.

    Used by workload unit tests to check that each synthetic benchmark has
    the instruction mix it is documented to have (load fraction, branch
    fraction, FP share, unique footprint, …).
    """

    count: int = 0
    op_counts: Counter = field(default_factory=Counter)
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    fp_instructions: int = 0
    unique_lines: int = 0
    unique_branch_sites: int = 0
    min_addr: int | None = None
    max_addr: int | None = None

    @property
    def load_fraction(self) -> float:
        return self.loads / self.count if self.count else 0.0

    @property
    def store_fraction(self) -> float:
        return self.stores / self.count if self.count else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.count if self.count else 0.0

    @property
    def fp_fraction(self) -> float:
        return self.fp_instructions / self.count if self.count else 0.0

    @property
    def taken_rate(self) -> float:
        return self.taken_branches / self.branches if self.branches else 0.0

    @property
    def footprint_bytes(self) -> int:
        """Distinct 64-byte cache lines touched, in bytes."""
        return self.unique_lines * 64


def summarize(trace: Iterable[Instruction], line_size: int = 64) -> TraceSummary:
    """Compute a :class:`TraceSummary` over *trace* (consumes it)."""
    summary = TraceSummary()
    lines: set[int] = set()
    branch_sites: set[int] = set()
    for instr in trace:
        summary.count += 1
        summary.op_counts[instr.op] += 1
        if instr.is_load:
            summary.loads += 1
        elif instr.is_store:
            summary.stores += 1
        if instr.is_branch:
            summary.branches += 1
            branch_sites.add(instr.pc)
            if instr.taken:
                summary.taken_branches += 1
        if instr.is_fp:
            summary.fp_instructions += 1
        if instr.addr is not None:
            lines.add(instr.addr // line_size)
            lo, hi = instr.addr, instr.addr + instr.size
            summary.min_addr = lo if summary.min_addr is None else min(summary.min_addr, lo)
            summary.max_addr = hi if summary.max_addr is None else max(summary.max_addr, hi)
    summary.unique_lines = len(lines)
    summary.unique_branch_sites = len(branch_sites)
    return summary
