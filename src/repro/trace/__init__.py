"""Trace infrastructure: streams of dynamic instructions and the kernel DSL.

Simulators in this package are *trace driven*: they consume an iterator of
:class:`repro.isa.Instruction` records carrying resolved memory addresses
and branch outcomes.  This module provides

* :mod:`repro.trace.stream` — utilities to slice, record, replay and
  summarize traces;
* :mod:`repro.trace.kernel` — a small "assembler" DSL with which the
  synthetic SPEC2000 workloads of :mod:`repro.workloads` are written;
* :mod:`repro.trace.layout` — virtual address-space layout helpers (arrays,
  linked structures) so workloads generate realistic address streams.
"""

from repro.trace.stream import (
    TraceRecorder,
    TraceSummary,
    materialize,
    replay,
    summarize,
    take,
)
from repro.trace.kernel import Kernel
from repro.trace.layout import AddressSpace, ArrayRef, LinkedList

__all__ = [
    "TraceRecorder",
    "TraceSummary",
    "materialize",
    "replay",
    "summarize",
    "take",
    "Kernel",
    "AddressSpace",
    "ArrayRef",
    "LinkedList",
]
