"""Virtual address-space layout for synthetic workloads.

Workloads model real data structures — arrays, matrices, linked lists,
hash tables — and must emit address streams whose cache behaviour resembles
the benchmark being mimicked.  This module provides the allocation and
addressing helpers those workloads share.

Addresses are plain integers in a private per-workload virtual space; the
cache models only care about their line-granularity structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Cache line size assumed throughout the evaluation (bytes).
LINE_SIZE = 64


class AddressSpace:
    """Bump allocator for a workload's virtual address space.

    Every workload owns one address space; regions it allocates are recorded
    so the functional cache warm-up (:mod:`repro.memory.warmup`) can touch
    the working set before timed simulation starts.
    """

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base
        #: (base, size) of every allocated region, in allocation order.
        self.regions: list[tuple[int, int]] = []

    def alloc(self, size: int, align: int = LINE_SIZE) -> int:
        """Allocate *size* bytes aligned to *align* and return the base."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive: {size}")
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a positive power of two: {align}")
        base = (self._next + align - 1) & ~(align - 1)
        self._next = base + size
        self.regions.append((base, size))
        return base

    @property
    def footprint(self) -> int:
        """Total bytes allocated across all regions."""
        return sum(size for _, size in self.regions)


@dataclass(frozen=True)
class ArrayRef:
    """A typed array in the virtual address space."""

    base: int
    elem_size: int
    length: int

    @property
    def size(self) -> int:
        return self.elem_size * self.length

    def addr(self, index: int) -> int:
        """Address of element *index* (wraps around, so any int is valid)."""
        return self.base + (index % self.length) * self.elem_size

    @staticmethod
    def alloc(space: AddressSpace, length: int, elem_size: int = 8) -> "ArrayRef":
        base = space.alloc(length * elem_size)
        return ArrayRef(base=base, elem_size=elem_size, length=length)


class LinkedList:
    """A shuffled singly-linked list for pointer-chasing workloads.

    Nodes are spread pseudo-randomly over a region so that successive
    pointer dereferences hit different cache lines — the access pattern
    behind `mcf`-style serial miss chains, which the paper identifies as the
    SpecINT behaviour that defeats large instruction windows.
    """

    def __init__(
        self,
        space: AddressSpace,
        nodes: int,
        node_size: int = 64,
        rng: random.Random | None = None,
    ) -> None:
        if nodes <= 0:
            raise ValueError("linked list needs at least one node")
        rng = rng or random.Random(0)
        self.node_size = node_size
        self.base = space.alloc(nodes * node_size)
        order = list(range(nodes))
        rng.shuffle(order)
        self._order = order
        self._pos = 0

    @property
    def nodes(self) -> int:
        return len(self._order)

    def current(self) -> int:
        """Address of the node the traversal cursor points at."""
        return self.base + self._order[self._pos] * self.node_size

    def advance(self) -> int:
        """Follow the next pointer; returns the new node's address."""
        self._pos = (self._pos + 1) % len(self._order)
        return self.current()

    def reset(self) -> None:
        self._pos = 0


def strided_touch_plan(regions: list[tuple[int, int]], stride: int = LINE_SIZE):
    """Yield (address, is_write) pairs covering *regions* line by line.

    This is the default functional warm-up plan: one read per cache line of
    every allocated region, in allocation order, which leaves the caches in
    a plausible steady state for the timed run.
    """
    for base, size in regions:
        for offset in range(0, size, stride):
            yield base + offset, False
