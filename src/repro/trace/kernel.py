"""Kernel DSL: the "assembler" with which synthetic workloads are written.

A :class:`Kernel` hands out architectural registers, assigns stable program
counters to named static sites (so branch predictors can learn each branch),
tracks the dynamic sequence number, and exposes one emit method per
operation class.  A workload is then an ordinary Python generator that calls
these methods and yields the resulting :class:`~repro.isa.Instruction`
records::

    def _run(self, k: Kernel):
        a = ArrayRef.alloc(k.space, 4096)
        acc, tmp = k.fregs(2)
        for i in itertools.count():
            yield k.load(tmp, addr=a.addr(i), fp=True)
            yield k.fadd(acc, acc, tmp)
            yield k.branch("loop", srcs=(k.zero,), taken=True)
"""

from __future__ import annotations

import random

from repro.isa import Instruction, OpClass
from repro.isa.registers import (
    FP_BASE,
    FP_ZERO,
    INT_ZERO,
    NUM_FP_REGS,
    NUM_INT_REGS,
    RegisterName,
)
from repro.trace.layout import AddressSpace


class Kernel:
    """Emission context for one workload instance.

    Attributes:
        rng: Seeded random source; the only source of randomness a workload
            may use, which keeps traces deterministic per seed.
        space: The workload's virtual address space.
        zero: The integer zero register (always READY; useful as a dummy
            source for unconditional loop branches).
    """

    def __init__(self, seed: int = 0, code_base: int = 0x0001_0000) -> None:
        self.rng = random.Random(seed)
        self.space = AddressSpace()
        self.zero: RegisterName = INT_ZERO
        self.fzero: RegisterName = FP_ZERO
        self._seq = 0
        self._code_base = code_base
        self._sites: dict[str, int] = {}
        self._next_site = code_base
        self._anon_pc = code_base + 0x0010_0000
        self._int_cursor = 1   # r0 reserved as a long-lived accumulator base
        self._fp_cursor = 0

    # ------------------------------------------------------------------
    # Register allocation
    # ------------------------------------------------------------------

    def iregs(self, count: int) -> list[RegisterName]:
        """Allocate *count* distinct integer registers (excluding r31)."""
        if self._int_cursor + count > NUM_INT_REGS - 1:
            raise ValueError(
                f"out of integer registers: wanted {count}, "
                f"only {NUM_INT_REGS - 1 - self._int_cursor} free"
            )
        regs = list(range(self._int_cursor, self._int_cursor + count))
        self._int_cursor += count
        return regs

    def fregs(self, count: int) -> list[RegisterName]:
        """Allocate *count* distinct floating-point registers (excluding f31)."""
        if self._fp_cursor + count > NUM_FP_REGS - 1:
            raise ValueError(
                f"out of fp registers: wanted {count}, "
                f"only {NUM_FP_REGS - 1 - self._fp_cursor} free"
            )
        regs = [FP_BASE + i for i in range(self._fp_cursor, self._fp_cursor + count)]
        self._fp_cursor += count
        return regs

    # ------------------------------------------------------------------
    # Program counters
    # ------------------------------------------------------------------

    def site(self, name: str) -> int:
        """Return a stable pc for the named static instruction site."""
        pc = self._sites.get(name)
        if pc is None:
            pc = self._next_site
            self._sites[name] = pc
            self._next_site += 4
        return pc

    def _pc(self, site: str | None) -> int:
        if site is not None:
            return self.site(site)
        pc = self._anon_pc
        # Rotate anonymous pcs through a 4 KiB window; non-branch pcs only
        # need to be plausible, nothing keys off them.
        self._anon_pc = self._code_base + 0x0010_0000 + ((pc + 4) & 0xFFF)
        return pc

    def _emit(
        self,
        op: OpClass,
        dest: RegisterName | None = None,
        srcs: tuple[RegisterName, ...] = (),
        addr: int | None = None,
        size: int = 8,
        taken: bool | None = None,
        target: int | None = None,
        site: str | None = None,
    ) -> Instruction:
        instr = Instruction(
            seq=self._seq,
            pc=self._pc(site),
            op=op,
            dest=dest,
            srcs=srcs,
            addr=addr,
            size=size,
            taken=taken,
            target=target,
        )
        self._seq += 1
        return instr

    # ------------------------------------------------------------------
    # Integer operations
    # ------------------------------------------------------------------

    def alu(self, dest: RegisterName, *srcs: RegisterName) -> Instruction:
        """Integer ALU operation (add/sub/logic/shift — 1 cycle)."""
        return self._emit(OpClass.INT_ALU, dest=dest, srcs=tuple(srcs))

    def mul(self, dest: RegisterName, *srcs: RegisterName) -> Instruction:
        """Integer multiply."""
        return self._emit(OpClass.INT_MUL, dest=dest, srcs=tuple(srcs))

    # ------------------------------------------------------------------
    # Floating-point operations
    # ------------------------------------------------------------------

    def fadd(self, dest: RegisterName, *srcs: RegisterName) -> Instruction:
        return self._emit(OpClass.FP_ADD, dest=dest, srcs=tuple(srcs))

    def fmul(self, dest: RegisterName, *srcs: RegisterName) -> Instruction:
        return self._emit(OpClass.FP_MUL, dest=dest, srcs=tuple(srcs))

    def fdiv(self, dest: RegisterName, *srcs: RegisterName) -> Instruction:
        return self._emit(OpClass.FP_DIV, dest=dest, srcs=tuple(srcs))

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------

    def load(
        self,
        dest: RegisterName,
        addr: int,
        base: RegisterName | None = None,
        size: int = 8,
        fp: bool = False,
    ) -> Instruction:
        """Load into *dest* from *addr*; *base* is the address register.

        When *base* is omitted the zero register is used, modelling an
        absolute/global access whose address is available immediately.
        Pointer-chasing workloads pass the register holding the previous
        load's result as *base*, creating the serial dependence the paper's
        SpecINT analysis hinges on.
        """
        op = OpClass.FP_LOAD if fp else OpClass.LOAD
        srcs = (base if base is not None else self.zero,)
        return self._emit(op, dest=dest, srcs=srcs, addr=addr, size=size)

    def store(
        self,
        value: RegisterName,
        addr: int,
        base: RegisterName | None = None,
        size: int = 8,
        fp: bool = False,
    ) -> Instruction:
        """Store register *value* to *addr*."""
        op = OpClass.FP_STORE if fp else OpClass.STORE
        srcs = (value, base if base is not None else self.zero)
        return self._emit(op, srcs=srcs, addr=addr, size=size)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------

    def branch(
        self,
        site: str,
        srcs: tuple[RegisterName, ...],
        taken: bool,
        target: int = 0,
    ) -> Instruction:
        """Conditional branch at the named static site.

        The branch resolves when its *srcs* are ready; a branch whose source
        is a missed load therefore resolves a full memory latency after
        fetch — the low-locality branch of Section 2.
        """
        return self._emit(
            OpClass.BRANCH, srcs=srcs, taken=taken, target=target, site=site
        )

    def loop_branch(self, site: str, taken: bool = True) -> Instruction:
        """Loop back-edge branch depending only on a ready counter.

        Modelled as sourcing the zero register: loop trip counters are
        short-latency and effectively always ready.
        """
        return self.branch(site, srcs=(self.zero,), taken=taken)

    def jump(self, site: str, target: int = 0) -> Instruction:
        """Unconditional jump (always taken, trivially predicted)."""
        return self._emit(OpClass.JUMP, taken=True, target=target, site=site)

    def nop(self) -> Instruction:
        return self._emit(OpClass.NOP)
