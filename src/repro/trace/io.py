"""Trace serialization: save and reload instruction traces.

The simulators are trace driven, so being able to persist a trace —
for sharing a regression case, diffing two generator versions, or feeding
an external tool — rounds out the infrastructure.  The format is a
compact, self-describing text format (one instruction per line, gzip
supported via the filename) chosen for durability and diff-ability over
raw pickles:

    # repro-trace v1
    # region <base-hex> <size>
    <seq> <pc> <op> <dest> <src0,src1> <addr> <size> <taken> <target>

Missing fields are ``-``.  ``# region`` comment lines (optional, written
by :func:`save_trace`) record the generating workload's data regions so
a replayed trace warms the caches exactly like the original run; other
comment lines and blanks are ignored.  Round-tripping is exact (asserted
by property tests in ``tests/trace/test_io.py``), and every parse or
decompression defect raises :class:`TraceFormatError` rather than
leaking the underlying gzip error (or its file handle).
"""

from __future__ import annotations

import contextlib
import gzip
import io
from typing import Iterable, Iterator, Sequence, TextIO

from repro.isa import Instruction, OpClass

_HEADER = "# repro-trace v1"
_REGION_PREFIX = "# region "


class TraceFormatError(ValueError):
    """A trace file is missing, truncated, corrupt, or malformed."""


def _open(path: str, mode: str) -> TextIO:
    if path.endswith(".gz"):
        raw = gzip.open(path, mode + "b")
        try:
            return io.TextIOWrapper(raw)  # type: ignore[arg-type]
        except Exception:
            # Never leak the underlying gzip handle when wrapping fails.
            raw.close()
            raise
    return open(path, mode)


def _field(value) -> str:
    if value is None:
        return "-"
    if value is True:
        return "T"
    if value is False:
        return "N"
    return str(value)


def dump_trace(
    instructions: Iterable[Instruction],
    path: str,
    regions: Sequence[tuple[int, int]] | None = None,
) -> int:
    """Write *instructions* to *path* (gzip if it ends with ``.gz``).

    *regions*, when given, are recorded as ``# region`` comment lines so
    the trace carries the data-region map cache warm-up needs.  Returns
    the number of instructions written.
    """
    count = 0
    with _open(path, "w") as handle:
        handle.write(_HEADER + "\n")
        for base, size in regions or ():
            handle.write(f"{_REGION_PREFIX}{base:x} {size}\n")
        for instr in instructions:
            srcs = ",".join(str(s) for s in instr.srcs) if instr.srcs else "-"
            handle.write(
                " ".join(
                    (
                        str(instr.seq),
                        format(instr.pc, "x"),
                        instr.op.name,
                        _field(instr.dest),
                        srcs,
                        format(instr.addr, "x") if instr.addr is not None else "-",
                        str(instr.size),
                        _field(instr.taken),
                        _field(instr.target),
                    )
                )
                + "\n"
            )
            count += 1
    return count


def save_trace(workload, path: str, n: int) -> int:
    """Capture the first *n* instructions of *workload* (including its
    region map) at *path*; the file replays through the ``trace(...)``
    workload kind.  Returns the instruction count written."""
    trace = workload.trace(n)
    return dump_trace(trace, path, regions=workload.regions)


def _parse_int(token: str, base: int = 10):
    return None if token == "-" else int(token, base)


def _parse_bool(token: str):
    if token == "-":
        return None
    if token == "T":
        return True
    if token == "N":
        return False
    raise ValueError(f"bad boolean field {token!r}")


#: Decompression/decoding failures a corrupt ``.gz`` (or binary junk)
#: surfaces mid-read; all are re-raised as :class:`TraceFormatError`.
_READ_ERRORS = (OSError, EOFError, UnicodeDecodeError, gzip.BadGzipFile)


@contextlib.contextmanager
def _opened_trace(path: str) -> Iterator[TextIO]:
    """Open *path* for reading and validate its header, converting every
    open-time and read-time defect — missing file, directory path,
    permission error, bad header, truncated/corrupt gzip — into
    :class:`TraceFormatError`.  The handle is closed either way."""
    try:
        handle = _open(path, "r")
    except FileNotFoundError:
        raise TraceFormatError(f"{path}: trace file does not exist") from None
    except OSError as error:
        raise TraceFormatError(f"{path}: cannot open trace: {error}") from None
    with handle:
        try:
            header = handle.readline().rstrip("\n")
            if header != _HEADER:
                raise TraceFormatError(
                    f"{path}: not a repro trace (header {header!r}, "
                    f"expected {_HEADER!r})"
                )
            yield handle
        except _READ_ERRORS as error:
            raise TraceFormatError(
                f"{path}: corrupt or truncated trace: {error}"
            ) from None


def load_trace(path: str) -> Iterator[Instruction]:
    """Stream instructions back from a file written by :func:`dump_trace`.

    Raises :class:`TraceFormatError` (a ``ValueError``) for a missing or
    unreadable file, a bad header, a malformed record, or a truncated/
    corrupt gzip stream; the underlying file handle is closed either way.
    """
    with _opened_trace(path) as handle:
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 9:
                raise TraceFormatError(
                    f"{path}:{line_number}: malformed record: {line!r}"
                )
            seq, pc, op, dest, srcs, addr, size, taken, target = parts
            try:
                yield Instruction(
                    seq=int(seq),
                    pc=int(pc, 16),
                    op=OpClass[op],
                    dest=_parse_int(dest),
                    srcs=tuple(int(s) for s in srcs.split(","))
                    if srcs != "-"
                    else (),
                    addr=_parse_int(addr, 16),
                    size=int(size),
                    taken=_parse_bool(taken),
                    target=_parse_int(target),
                )
            except (ValueError, KeyError) as error:
                raise TraceFormatError(
                    f"{path}:{line_number}: malformed record: {line!r} "
                    f"({error})"
                ) from None


def read_trace_regions(path: str) -> list[tuple[int, int]]:
    """The ``# region`` map of a trace file (empty for regionless files).

    Only the comment block before the first instruction record is
    scanned, so this stays O(header) even for multi-megabyte traces.
    """
    regions: list[tuple[int, int]] = []
    with _opened_trace(path) as handle:
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if line.startswith(_REGION_PREFIX):
                parts = line.split()
                if len(parts) != 4:
                    raise TraceFormatError(
                        f"{path}:{line_number}: malformed region: {line!r}"
                    )
                try:
                    regions.append((int(parts[2], 16), int(parts[3])))
                except ValueError:
                    raise TraceFormatError(
                        f"{path}:{line_number}: malformed region: {line!r}"
                    ) from None
            elif line and not line.startswith("#"):
                break
    return regions
