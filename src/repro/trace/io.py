"""Trace serialization: save and reload instruction traces.

The simulators are trace driven, so being able to persist a trace —
for sharing a regression case, diffing two generator versions, or feeding
an external tool — rounds out the infrastructure.  The format is a
compact, self-describing text format (one instruction per line, gzip
supported via the filename) chosen for durability and diff-ability over
raw pickles:

    # repro-trace v1
    <seq> <pc> <op> <dest> <src0,src1> <addr> <size> <taken> <target>

Missing fields are ``-``.  Round-tripping is exact (asserted by property
tests in ``tests/trace/test_io.py``).
"""

from __future__ import annotations

import gzip
import io
from typing import Iterable, Iterator, TextIO

from repro.isa import Instruction, OpClass

_HEADER = "# repro-trace v1"


def _open(path: str, mode: str) -> TextIO:
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"))  # type: ignore[arg-type]
    return open(path, mode)


def _field(value) -> str:
    if value is None:
        return "-"
    if value is True:
        return "T"
    if value is False:
        return "N"
    return str(value)


def dump_trace(instructions: Iterable[Instruction], path: str) -> int:
    """Write *instructions* to *path* (gzip if it ends with ``.gz``).

    Returns the number of instructions written.
    """
    count = 0
    with _open(path, "w") as handle:
        handle.write(_HEADER + "\n")
        for instr in instructions:
            srcs = ",".join(str(s) for s in instr.srcs) if instr.srcs else "-"
            handle.write(
                " ".join(
                    (
                        str(instr.seq),
                        format(instr.pc, "x"),
                        instr.op.name,
                        _field(instr.dest),
                        srcs,
                        format(instr.addr, "x") if instr.addr is not None else "-",
                        str(instr.size),
                        _field(instr.taken),
                        _field(instr.target),
                    )
                )
                + "\n"
            )
            count += 1
    return count


def _parse_int(token: str, base: int = 10):
    return None if token == "-" else int(token, base)


def _parse_bool(token: str):
    if token == "-":
        return None
    if token == "T":
        return True
    if token == "N":
        return False
    raise ValueError(f"bad boolean field {token!r}")


def load_trace(path: str) -> Iterator[Instruction]:
    """Stream instructions back from a file written by :func:`dump_trace`."""
    with _open(path, "r") as handle:
        header = handle.readline().rstrip("\n")
        if header != _HEADER:
            raise ValueError(
                f"{path}: not a repro trace (header {header!r}, "
                f"expected {_HEADER!r})"
            )
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 9:
                raise ValueError(f"{path}:{line_number}: malformed record: {line!r}")
            seq, pc, op, dest, srcs, addr, size, taken, target = parts
            yield Instruction(
                seq=int(seq),
                pc=int(pc, 16),
                op=OpClass[op],
                dest=_parse_int(dest),
                srcs=tuple(int(s) for s in srcs.split(",")) if srcs != "-" else (),
                addr=_parse_int(addr, 16),
                size=int(size),
                taken=_parse_bool(taken),
                target=_parse_int(target),
            )
