"""Figure 12 (+ §4.4): L2 size sweep on SpecFP — the D-KIP barely cares.

Paper shape: R10-256 gains 1.55x across the 64KB→4MB sweep while the most
aggressive D-KIP gains only 1.18x, because the D-KIP processes correct-path
long-latency instructions without stalling.  §4.4: the CP's share of
committed instructions grows (67%→77% in the paper) with the L2.
"""

from benchmarks.conftest import regenerate


def test_fig12_cache_sweep_fp(benchmark):
    result = regenerate(benchmark, "fig12")
    gains = {}
    for row in result.rows:
        label, ipcs = row[0], row[1:-2]
        gains[label] = ipcs[-1] / ipcs[0]
    r10_gain = gains.pop("R10-256")
    # Every D-KIP configuration is far less cache sensitive than R10-256.
    for label, gain in gains.items():
        assert r10_gain > gain * 1.4, f"{label}: {gain:.2f} vs R10 {r10_gain:.2f}"

    # §4.4: CP share grows with the L2 on the D-KIP rows.
    for row in result.rows:
        if row[0] == "R10-256":
            continue
        lo, hi = row[-1].replace("%", "").split("→")
        assert float(hi) >= float(lo)
