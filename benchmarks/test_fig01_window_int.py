"""Figure 1: IPC vs window size on SpecINT — limited recovery.

Paper shape: all memory configurations improve modestly with window size,
but the slow-memory curves never close on the perfect-L1 curve (pointer
chasing and miss-dependent mispredictions stay on the critical path).
"""

from benchmarks.conftest import regenerate


def test_fig1_window_scaling_int(benchmark):
    result = regenerate(benchmark, "fig1")
    rows = {row[0]: row[1:] for row in result.rows}
    perfect = rows["L1-2"]
    slow = rows["MEM-400"]
    # Window scaling never hurts integer codes...
    assert slow[-1] >= slow[0] * 0.95
    # ...but at the largest window, slow memory stays well short of the
    # perfect-cache configuration (unlike SpecFP in Figure 2).
    assert slow[-1] < perfect[-1] * 0.75
