"""Figure 3: the decode→issue distance histogram (execution locality).

Paper shape: ~70% of SpecFP instructions issue within 300 cycles of
decode; a distinct peak sits at ~1x the memory latency; a small residual
at ~2x (chains of two misses).  We assert the trimodal structure; the 2x
peak is smaller than the paper's 4% (documented in EXPERIMENTS.md).
"""

from benchmarks.conftest import regenerate
from repro.experiments.common import Scale


def test_fig3_issue_latency(benchmark):
    # Default scale: the quick subset misses ammp, the two-miss workload.
    result = regenerate(benchmark, "fig3", scale=Scale.DEFAULT)
    fractions = {row[0]: row[1] for row in result.rows}
    assert fractions["< 300"] > 0.5
    assert fractions["300-500 (~1x memory)"] > 0.05
    assert fractions["700-900 (~2x memory)"] > 0.001
    assert fractions["< 300"] > fractions["300-500 (~1x memory)"]
