"""Figure 11: L2 size sweep on SpecINT — everyone scales with the cache.

Paper shape: near-linear IPC growth per L2 doubling on every machine; the
D-KIP behaves like the conventional core here (its latency tolerance
cannot fix serial miss chains, only a bigger cache can).
"""

from benchmarks.conftest import regenerate


def test_fig11_cache_sweep_int(benchmark):
    result = regenerate(benchmark, "fig11")
    for row in result.rows:
        label, ipcs = row[0], row[1:-2]
        # IPC grows substantially from the smallest to the largest L2.
        assert ipcs[-1] > ipcs[0] * 1.3, f"{label}: {ipcs}"
        # And (near-)monotonically along the sweep.
        assert all(b >= a * 0.9 for a, b in zip(ipcs, ipcs[1:])), label
