"""Micro-benchmarks of the simulation substrate itself.

Not a paper figure: these track the simulator's own performance so
regressions in the hot paths (cache access, wakeup, per-cycle overhead,
quiescence fast-forwarding) are visible in the benchmark history.
``benchmarks/compare.py`` (``make bench``) diffs the
``simulator-throughput`` group against the committed
``BENCH_baseline.json`` and fails on regressions.

The core benchmarks run on the paper's default MEM-400 memory system with
two complementary workloads: ``applu`` keeps the pipeline busy (little to
fast-forward), while ``mcf``'s pointer chasing serializes on 400-cycle
misses — the quiescent regime the cycle-skipping engine targets.
"""

import pytest

from repro.branch import make_predictor
from repro.machines import parse_machine
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy
from repro.sim.batch import BatchRunner
from repro.sim.config import DKIP_2048, R10_64
from repro.sim.runner import simulate
from repro.workloads import get_workload

#: (workload, instructions) pairs for the core-throughput benchmarks.
CORE_WORKLOADS = ("applu", "mcf")
CORE_INSTRUCTIONS = 4_000


def _run_core_benchmark(benchmark, config, workload_name):
    workload = get_workload(workload_name)
    trace = workload.trace(CORE_INSTRUCTIONS)

    def run():
        return simulate(config, trace, regions=workload.regions)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert stats.committed == CORE_INSTRUCTIONS
    return stats


def test_cache_access_throughput(benchmark):
    hierarchy = MemoryHierarchy(DEFAULT_MEMORY)
    addresses = [(i * 191) % (1 << 22) for i in range(10_000)]

    def touch_all():
        for addr in addresses:
            hierarchy.access(addr, now=0)

    benchmark.pedantic(touch_all, rounds=3, iterations=1)


def test_perceptron_throughput(benchmark):
    predictor = make_predictor("perceptron")
    pcs = [(i * 64) & 0xFFFF for i in range(5_000)]

    def predict_all():
        for pc in pcs:
            predictor.update(pc, pc & 1 == 0)

    benchmark.pedantic(predict_all, rounds=3, iterations=1)


@pytest.mark.benchmark(group="simulator-throughput")
@pytest.mark.parametrize("workload_name", CORE_WORKLOADS)
def test_r10_core_cycles_per_second(benchmark, workload_name):
    _run_core_benchmark(benchmark, R10_64, workload_name)


@pytest.mark.benchmark(group="simulator-throughput")
@pytest.mark.parametrize("workload_name", CORE_WORKLOADS)
def test_dkip_core_cycles_per_second(benchmark, workload_name):
    _run_core_benchmark(benchmark, DKIP_2048, workload_name)


@pytest.mark.benchmark(group="simulator-throughput")
@pytest.mark.parametrize("workload_name", CORE_WORKLOADS)
def test_ooobp_core_cycles_per_second(benchmark, workload_name):
    """Predictor-axis OoO core: exercises the gshare update path and the
    misprediction-stall accounting on top of the baseline pipeline."""
    _run_core_benchmark(
        benchmark, parse_machine("ooo-bp(bp=gshare-12,rob=32)"), workload_name
    )


@pytest.mark.benchmark(group="simulator-throughput")
@pytest.mark.parametrize("workload_name", ("mcf",))
def test_dual_core_cycles_per_second(benchmark, workload_name):
    """Dual-core with shared-L2 arbitration: two pipelines per simulated
    cycle, the heaviest machine kind the sweep layer dispatches."""
    _run_core_benchmark(
        benchmark,
        parse_machine("dual(rob=32,co=synth(chase=8),bp=gshare-10)"),
        workload_name,
    )


@pytest.mark.benchmark(group="simulator-throughput")
def test_batched_grid_throughput(benchmark):
    """The batched dispatch kernel: one BatchRunner interleaving four
    cells, the unit of work ``run_cells(batch=N)`` amortizes."""
    workloads = {name: get_workload(name) for name in CORE_WORKLOADS}
    traces = {
        name: workload.trace(CORE_INSTRUCTIONS)
        for name, workload in workloads.items()
    }

    def run():
        runner = BatchRunner()
        for config in (R10_64, DKIP_2048):
            for name, workload in workloads.items():
                runner.add_simulation(
                    (config.name, name), config, traces[name],
                    regions=workload.regions,
                )
        return runner.run()

    outcomes = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(outcome == "ok" for outcome, _ in outcomes.values())


@pytest.mark.benchmark(group="simulator-throughput")
@pytest.mark.parametrize("workload_name", ("mcf",))
def test_r10_core_reference_mode(benchmark, workload_name):
    """Tick-every-cycle reference mode: the denominator of the speedup the
    quiescence engine provides (kept in the history so PERFORMANCE.md's
    claims stay checkable)."""
    workload = get_workload(workload_name)
    trace = workload.trace(CORE_INSTRUCTIONS)

    def run():
        return simulate(trace=trace, config=R10_64, regions=workload.regions,
                        fast_forward=False)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert stats.committed == CORE_INSTRUCTIONS
