"""Micro-benchmarks of the simulation substrate itself.

Not a paper figure: these track the simulator's own performance so
regressions in the hot paths (cache access, wakeup, per-cycle overhead)
are visible in the benchmark history.
"""

from repro.branch import make_predictor
from repro.memory import DEFAULT_MEMORY, MemoryHierarchy
from repro.sim.config import DKIP_2048, R10_64
from repro.sim.runner import simulate
from repro.workloads import get_workload


def test_cache_access_throughput(benchmark):
    hierarchy = MemoryHierarchy(DEFAULT_MEMORY)
    addresses = [(i * 191) % (1 << 22) for i in range(10_000)]

    def touch_all():
        for addr in addresses:
            hierarchy.access(addr, now=0)

    benchmark.pedantic(touch_all, rounds=3, iterations=1)


def test_perceptron_throughput(benchmark):
    predictor = make_predictor("perceptron")
    pcs = [(i * 64) & 0xFFFF for i in range(5_000)]

    def predict_all():
        for pc in pcs:
            predictor.update(pc, pc & 1 == 0)

    benchmark.pedantic(predict_all, rounds=3, iterations=1)


def test_r10_core_cycles_per_second(benchmark):
    workload = get_workload("applu")
    trace = workload.trace(4_000)

    def run():
        return simulate(R10_64, trace, regions=workload.regions)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert stats.committed == 4_000


def test_dkip_core_cycles_per_second(benchmark):
    workload = get_workload("applu")
    trace = workload.trace(4_000)

    def run():
        return simulate(DKIP_2048, trace, regions=workload.regions)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert stats.committed == 4_000
