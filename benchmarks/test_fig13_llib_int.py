"""Figure 13: integer-LLIB occupancy per SpecINT benchmark.

Paper shape: pointer-chasing benchmarks drive the integer LLIB hard (four
of them fill its 2048 entries); the register (LLRF) peak is always below
the instruction peak because many entries carry no READY operand.
"""

from benchmarks.conftest import regenerate


def test_fig13_llib_occupancy_int(benchmark):
    result = regenerate(benchmark, "fig13")
    rows = {row[0]: row for row in result.rows}
    # mcf, the pointer chaser, stresses the integer LLIB hardest.
    mcf_instr = rows["mcf"][1]
    assert mcf_instr == max(row[1] for row in result.rows)
    assert mcf_instr > 100
    # Registers never exceed instructions (Alpha: <=1 READY operand each).
    for name, row in rows.items():
        assert row[2] <= max(row[1], 1), name
