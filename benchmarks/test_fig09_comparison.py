"""Figure 9: R10-64 / R10-256 / KILO-1024 / D-KIP-2048 on both suites.

Paper shape (IPC): SpecINT 1.19 / 1.32 / 1.38 / 1.33 — compressed gaps,
KILO slightly ahead of the D-KIP.  SpecFP 1.26 / 1.71 / 2.23 / 2.37 — the
KILO-class machines far ahead, D-KIP ~1.9x over R10-64.
"""

from benchmarks.conftest import regenerate


def test_fig9_machine_comparison(benchmark):
    result = regenerate(benchmark, "fig9")
    ipc = {(row[0], row[1]): row[2] for row in result.rows}

    # SpecFP: the decoupled machines dominate.
    fp = {m: ipc[("SpecFP", m)] for m in ("R10-64", "R10-256", "KILO-1024", "D-KIP-2048")}
    assert fp["R10-64"] < fp["R10-256"] < fp["D-KIP-2048"]
    assert fp["D-KIP-2048"] > fp["R10-64"] * 1.8       # paper: +88%
    assert fp["D-KIP-2048"] > fp["R10-256"] * 1.3      # paper: +40%
    assert abs(fp["D-KIP-2048"] - fp["KILO-1024"]) < fp["KILO-1024"] * 0.25

    # SpecINT: gains compress; windows never hurt.
    int_ = {m: ipc[("SpecINT", m)] for m in ("R10-64", "R10-256", "KILO-1024", "D-KIP-2048")}
    assert int_["R10-64"] < int_["R10-256"]
    assert int_["D-KIP-2048"] > int_["R10-64"]
    assert int_["KILO-1024"] >= int_["D-KIP-2048"] * 0.95
    assert int_["D-KIP-2048"] < int_["R10-64"] * 1.6
