"""Figure 10: CP/MP scheduler policies and queue sizes on SpecFP.

Paper shape: out-of-order vs in-order in the Cache Processor is worth
roughly +30%; the Memory Processor's configuration matters only a few
percent, growing slightly with CP aggressiveness.
"""

from benchmarks.conftest import regenerate


def test_fig10_scheduler_sweep(benchmark):
    result = regenerate(benchmark, "fig10")
    rows = {row[0]: row[1:] for row in result.rows}
    ino_row = rows["INO"]
    biggest_cp = result.rows[-1][0]
    big_row = rows[biggest_cp]
    # OOO CP is a large win over an in-order CP.
    assert big_row[0] > ino_row[0] * 1.2
    # The MP config is a second-order effect next to the CP config.
    cp_gain = big_row[0] / ino_row[0]
    mp_gain = big_row[-1] / big_row[0]
    assert mp_gain < cp_gain
    assert mp_gain < 1.3
