"""Ablation benchmarks: the design-choice studies DESIGN.md calls out."""

from benchmarks.conftest import regenerate


def test_ablation_llib_size(benchmark):
    """The FIFO needs hundreds of entries; beyond ~2048 nothing changes
    (the paper's Figures 13/14 argument)."""
    result = regenerate(benchmark, "ablation-llib")
    rows = {row[0]: row for row in result.rows}
    # A tiny LLIB stalls Analyze measurably; the paper's 2048 does not.
    assert rows[64][2] > rows[2048][2]
    # IPC saturates: 2048 -> 4096 buys (almost) nothing.
    assert abs(rows[4096][1] - rows[2048][1]) <= max(0.05 * rows[2048][1], 0.02)
    # And a starved LLIB costs real performance.
    assert rows[2048][1] >= rows[64][1]


def test_ablation_rob_timer(benchmark):
    """Longer timers re-grow the window; the knee sits near the paper's 16."""
    result = regenerate(benchmark, "ablation-timer")
    ipcs = {row[0]: row[2] for row in result.rows}
    # A 64-cycle timer (256-entry ROB) is not dramatically better than 16:
    # the LLIB already provides the effective window.
    assert ipcs[64] <= ipcs[16] * 1.3


def test_ablation_predictor(benchmark):
    """Table 2's perceptron is competitive with every simpler predictor.

    (On the synthetic suite most branch outcomes are i.i.d. with a fixed
    bias, so majority-vote predictors are already near-optimal; the
    perceptron's history advantage shows on patterned branches, which the
    unit tests in tests/branch/ assert directly.)
    """
    result = regenerate(benchmark, "ablation-predictor")
    ipcs = {row[0]: row[1] for row in result.rows}
    best = max(ipcs.values())
    assert ipcs["perceptron"] >= best * 0.95


def test_ablation_runahead(benchmark):
    """Runahead (reference [24]) lands between the small core and the
    KILO-class machines on SpecFP."""
    result = regenerate(benchmark, "ablation-runahead")
    ipcs = {row[0]: row[1] for row in result.rows}
    assert ipcs["runahead-64"] > ipcs["R10-64"] * 1.5
    assert ipcs["runahead-64"] < ipcs["D-KIP-2048"]
