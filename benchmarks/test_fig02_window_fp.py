"""Figure 2: IPC vs window size on SpecFP — large windows recover the IPC.

Paper shape: with 4K ROB entries, even the 400-cycle-memory configuration
performs close to the perfect-L1 one; the recovery factor across the sweep
is large (load misses leave the critical path).
"""

from benchmarks.conftest import regenerate


def test_fig2_window_scaling_fp(benchmark):
    result = regenerate(benchmark, "fig2")
    rows = {row[0]: row[1:] for row in result.rows}
    perfect = rows["L1-2"]
    slow = rows["MEM-400"]
    # Big recovery across the sweep...
    assert slow[-1] > slow[0] * 3
    # ...ending in the neighbourhood of the perfect-cache configuration.
    assert slow[-1] > perfect[-1] * 0.6
    # Monotone non-decreasing in window size (allowing simulation noise).
    assert all(b >= a * 0.95 for a, b in zip(slow, slow[1:]))
