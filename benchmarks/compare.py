#!/usr/bin/env python
"""Benchmark regression gate for the simulator-throughput group.

Runs the pytest-benchmark suite with ``--benchmark-json``, compares the
mean runtimes of the ``simulator-throughput`` group against the committed
``BENCH_baseline.json``, and fails (exit 1) when any benchmark regressed
by more than the threshold (default 25%).

Opt-in via ``make bench``; refresh the baseline after an intentional
performance change with ``make bench-baseline`` (or ``--update``).

The baseline is a trimmed ``{benchmark name: mean seconds}`` mapping plus
a little metadata, so diffs stay readable in review.

Every ``--report-json`` run also appends one dated entry to the
append-only ``benchmarks/BENCH_history.jsonl`` (disable with
``--no-history``), preserving the performance trajectory across baseline
ratchets.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_baseline.json"
DEFAULT_HISTORY = Path(__file__).resolve().parent / "BENCH_history.jsonl"
DEFAULT_GROUP = "simulator-throughput"
DEFAULT_THRESHOLD = 0.25
BENCH_FILE = "benchmarks/test_simulator_throughput.py"


def run_benchmarks(json_path: Path) -> None:
    """Run the throughput suite, writing pytest-benchmark JSON."""
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        BENCH_FILE,
        "-q",
        f"--benchmark-json={json_path}",
    ]
    result = subprocess.run(cmd, cwd=ROOT, env=env)
    if result.returncode != 0:
        raise SystemExit(f"benchmark run failed (pytest exit {result.returncode})")


def load_group_means(json_path: Path, group: str) -> dict[str, float]:
    with open(json_path) as handle:
        data = json.load(handle)
    means = {}
    for bench in data.get("benchmarks", []):
        if bench.get("group") == group:
            means[bench["name"]] = bench["stats"]["mean"]
    if not means:
        raise SystemExit(f"no benchmarks found in group {group!r}")
    return means


def write_baseline(path: Path, means: dict[str, float], group: str) -> None:
    payload = {
        "group": group,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "means": {name: round(mean, 6) for name, mean in sorted(means.items())},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def compare(
    baseline: dict[str, float], current: dict[str, float], threshold: float
) -> tuple[list[str], list[str], dict[str, dict]]:
    """Returns (report lines, regression lines, per-benchmark records)."""
    lines, regressions = [], []
    records: dict[str, dict] = {}
    for name in sorted(set(baseline) | set(current)):
        base, new = baseline.get(name), current.get(name)
        if base is None:
            lines.append(f"  NEW      {name}: {new:.4f}s (no baseline; run --update)")
            records[name] = {"baseline": None, "current": new, "delta": None,
                             "status": "new"}
            continue
        if new is None:
            regressions.append(f"  MISSING  {name}: in baseline but not in this run")
            records[name] = {"baseline": base, "current": None, "delta": None,
                             "status": "missing"}
            continue
        delta = (new - base) / base
        status = "ok"
        line = f"  {status:8s} {name}: {base:.4f}s -> {new:.4f}s ({delta:+.1%})"
        if delta > threshold:
            status = "regress"
            line = f"  REGRESS  {name}: {base:.4f}s -> {new:.4f}s ({delta:+.1%})"
            regressions.append(line)
        records[name] = {"baseline": base, "current": new,
                         "delta": round(delta, 4), "status": status}
        lines.append(line)
    return lines, regressions, records


def write_report(
    path: Path,
    *,
    group: str,
    threshold: float,
    gated: bool,
    verdict: str,
    records: dict[str, dict],
) -> None:
    """Machine-readable verdict for CI artifact upload."""
    payload = {
        "group": group,
        "threshold": threshold,
        "gated": gated,
        "verdict": verdict,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "regressions": [
            name
            for name, record in records.items()
            if record["status"] in ("regress", "missing")
        ],
        "benchmarks": records,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"report written: {path}")


def append_history(
    path: Path,
    *,
    group: str,
    verdict: str,
    means: dict[str, float],
    records: dict[str, dict],
) -> None:
    """Append one dated line to the longitudinal benchmark history.

    The history is append-only JSONL — one entry per gated run — so
    performance over time stays reconstructable even after the baseline
    is ratcheted (the baseline only keeps the latest accepted means).
    """
    entry = {
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "group": group,
        "verdict": verdict,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "means": {name: round(mean, 6) for name, mean in sorted(means.items())},
        "regressions": sorted(
            name
            for name, record in records.items()
            if record["status"] in ("regress", "missing")
        ),
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"history appended: {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="committed baseline JSON (default: benchmarks/BENCH_baseline.json)",
    )
    parser.add_argument(
        "--group", default=DEFAULT_GROUP,
        help=f"benchmark group to gate (default: {DEFAULT_GROUP})",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative mean-time regression that fails the gate (default: 0.25)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from this run instead of comparing",
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help="reuse an existing --benchmark-json file instead of running pytest",
    )
    parser.add_argument(
        "--report-json", type=Path, default=None,
        help="write a machine-readable verdict (group, per-benchmark deltas, "
        "regressions) to this path",
    )
    parser.add_argument(
        "--history", type=Path, default=DEFAULT_HISTORY,
        help="append-only JSONL performance history, one dated entry per "
        "--report-json run (default: benchmarks/BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip the history append even when --report-json is given",
    )
    parser.add_argument(
        "--no-gate", "--smoke", action="store_true", dest="no_gate",
        help="report (and write --report-json) but always exit 0; the CI "
        "bench-smoke job uses this as a non-blocking signal",
    )
    args = parser.parse_args(argv)

    if args.json is not None:
        current = load_group_means(args.json, args.group)
    else:
        fd, tmp_name = tempfile.mkstemp(suffix=".json", prefix="bench-")
        os.close(fd)
        json_path = Path(tmp_name)
        try:
            run_benchmarks(json_path)
            current = load_group_means(json_path, args.group)
        finally:
            json_path.unlink(missing_ok=True)

    if args.update:
        write_baseline(args.baseline, current, args.group)
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update to create one")
        if args.report_json:
            records = {
                name: {"baseline": None, "current": mean, "delta": None,
                       "status": "new"}
                for name, mean in sorted(current.items())
            }
            write_report(
                args.report_json, group=args.group, threshold=args.threshold,
                gated=not args.no_gate, verdict="no-baseline", records=records,
            )
            if not args.no_history:
                append_history(
                    args.history, group=args.group, verdict="no-baseline",
                    means=current, records=records,
                )
        return 0 if args.no_gate else 2

    baseline = json.loads(args.baseline.read_text())["means"]
    lines, regressions, records = compare(baseline, current, args.threshold)
    print(f"benchmark group {args.group!r} vs {args.baseline.name} "
          f"(threshold {args.threshold:.0%}):")
    print("\n".join(lines))
    verdict = "regressions" if regressions else "pass"
    if args.report_json:
        write_report(
            args.report_json, group=args.group, threshold=args.threshold,
            gated=not args.no_gate, verdict=verdict, records=records,
        )
        if not args.no_history:
            append_history(
                args.history, group=args.group, verdict=verdict,
                means=current, records=records,
            )
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}:")
        print("\n".join(regressions))
        return 0 if args.no_gate else 1
    print("\nno regressions.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
