"""Figure 14: floating-point-LLIB occupancy per SpecFP benchmark.

Paper shape: no SpecFP benchmark fills the 2048-entry LLIB; the streaming
codes keep hundreds to ~1700 entries live (ammp highest); cache-resident
codes (galgel, mesa) keep it nearly empty; registers stay below
instructions.
"""

from benchmarks.conftest import regenerate


def test_fig14_llib_occupancy_fp(benchmark):
    result = regenerate(benchmark, "fig14")
    rows = {row[0]: row for row in result.rows}
    # Streaming codes occupy the FP LLIB; resident codes do not.
    assert rows["swim"][1] > 50
    assert rows["galgel"][1] < rows["swim"][1]
    # Registers below instructions everywhere.
    for name, row in rows.items():
        assert row[2] <= max(row[1], 1), name
