"""Benchmark-harness helpers.

Every benchmark regenerates one of the paper's tables/figures at quick
scale through ``benchmark.pedantic(..., rounds=1)`` — the payload is a
full experiment, so one round is the meaningful unit — then prints the
regenerated rows (run pytest with ``-s`` to see them) and asserts the
qualitative shape the paper reports.
"""

from __future__ import annotations

from repro.experiments.common import Scale
from repro.experiments.registry import get_experiment


def regenerate(benchmark, name: str, scale: Scale = Scale.QUICK):
    """Run experiment *name* once under the benchmark timer."""
    result = benchmark.pedantic(
        lambda: get_experiment(name)(scale), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.rows
    return result


def column(result, header: str):
    """Extract a column from an ExperimentResult by header name."""
    index = result.headers.index(header)
    return [row[index] for row in result.rows]
