"""Table 1: the six memory subsystems build and report paper latencies."""

from benchmarks.conftest import regenerate


def test_table1(benchmark):
    result = regenerate(benchmark, "table1")
    names = [row[0] for row in result.rows]
    assert names == ["L1-2", "L2-11", "L2-21", "MEM-100", "MEM-400", "MEM-1000"]
    mem_400 = next(row for row in result.rows if row[0] == "MEM-400")
    assert mem_400[1] == 2 and mem_400[3] == 11 and mem_400[5] == 400
