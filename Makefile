# Convenience targets; everything assumes the in-repo source layout and
# sets PYTHONPATH accordingly.

PYTHON ?= python

.PHONY: test lint bench bench-smoke bench-baseline experiments reproduce sweep-smoke workload-smoke chaos-smoke simpoint-smoke contention-smoke perf-smoke serve-smoke

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Static checks (CI runs the same commands).
lint:
	ruff check src tests benchmarks examples

# Opt-in benchmark regression gate: runs the simulator-throughput
# pytest-benchmark group and fails on >25% mean-time regressions against
# benchmarks/BENCH_baseline.json.
bench:
	$(PYTHON) benchmarks/compare.py

# Non-blocking throughput signal: tiny-scale run, machine-readable
# verdict in bench-report.json, always exits 0 (CI uploads the report as
# an artifact instead of gating on it).
bench-smoke:
	$(PYTHON) benchmarks/compare.py --no-gate --report-json bench-report.json

# Refresh the committed baseline after an intentional performance change.
bench-baseline:
	$(PYTHON) benchmarks/compare.py --update

# The scenario engine end to end: a tiny ad-hoc machine grid, cold then
# warm against .sweep-store (the warm run simulates zero cells).  The
# same check gates in CI.
sweep-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments sweep \
	  --machines "r10(rob=32),dkip(llib=4096)" --workloads "mcf,swim" \
	  --scale quick --store .sweep-store
	PYTHONPATH=src $(PYTHON) -m repro.experiments sweep \
	  --machines "r10(rob=32),dkip(llib=4096)" --workloads "mcf,swim" \
	  --scale quick --store .sweep-store | grep ", 0 simulated"

# The workload layer end to end: a 2-point synth sweep, cold then warm
# against .workload-store (the warm run simulates zero cells).  The
# same check gates in CI.
workload-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments sweep \
	  --machines "dkip(llib=1024)" \
	  --workloads "synth(chase=4),synth(chase=16)" \
	  --scale quick --instructions 2000 --store .workload-store
	PYTHONPATH=src $(PYTHON) -m repro.experiments sweep \
	  --machines "dkip(llib=1024)" \
	  --workloads "synth(chase=4),synth(chase=16)" \
	  --scale quick --instructions 2000 --store .workload-store \
	  | grep ", 0 simulated"

# The SimPoint pipeline end to end: capture a small trace, select
# weighted phases (writing the .toml phase spec), then run the phase
# sweep cold and warm against .simpoint-store (the warm run simulates
# zero cells — every phase cell resumes from the store).  The same
# check gates in CI.
simpoint-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments simpoint \
	  .simpoint-trace.trc.gz --capture mcf --instructions 8000 \
	  --interval 1000 --k 3 --machines "dkip(llib=1024)" \
	  --spec-out .simpoint-phases.toml
	PYTHONPATH=src $(PYTHON) -m repro.experiments sweep \
	  .simpoint-phases.toml --scale quick --store .simpoint-store
	PYTHONPATH=src $(PYTHON) -m repro.experiments sweep \
	  .simpoint-phases.toml --scale quick --store .simpoint-store \
	  | grep ", 0 simulated"

# The dual-core machine kind end to end: the curated co-runner x
# predictor contention grid, cold then warm against .contention-store
# (the warm run simulates zero cells — dual/ooo-bp configs round-trip
# the store like every other kind).  The same check gates in CI.
contention-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.experiments sweep contention \
	  --scale quick --store .contention-store
	PYTHONPATH=src $(PYTHON) -m repro.experiments sweep contention \
	  --scale quick --store .contention-store | grep ", 0 simulated"

# The fault-tolerant executor under deterministic chaos: the battery in
# tests/resilience/ plus one CLI run where 40% of cell attempts are
# killed mid-flight and the sweep must still exit 0 with a full grid.
# The same check gates in CI.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/resilience -x -q
	REPRO_JOBS=2 REPRO_FAULT="cell:kill:0.4,seed=11" \
	  PYTHONPATH=src $(PYTHON) -m repro.experiments sweep \
	  --machines "r10(rob=32)" --workloads "mcf,swim" \
	  --scale quick --instructions 2000 --no-store --retries 8

# The batched dispatch kernel end to end: the same small grid serially
# and with REPRO_BATCH batching over the pool executor, asserting the
# result rows are byte-identical; then one profiled cell, leaving
# profile.pstats for CI to upload.  The same check gates in CI.
PERF_SMOKE_GRID = --machines "r10(rob=32),dkip(llib=4096),ooo-bp(bp=gshare-10,rob=24)" \
  --workloads "mcf,swim" --scale quick --instructions 2000 \
  --name perfsmoke --no-store
perf-smoke:
	rm -rf .perf-serial .perf-batch
	PYTHONPATH=src $(PYTHON) -m repro.experiments sweep $(PERF_SMOKE_GRID) \
	  --csv .perf-serial
	REPRO_BATCH=4 REPRO_JOBS=2 \
	  PYTHONPATH=src $(PYTHON) -m repro.experiments sweep $(PERF_SMOKE_GRID) \
	  --csv .perf-batch
	cmp .perf-serial/perfsmoke.csv .perf-batch/perfsmoke.csv
	PYTHONPATH=src $(PYTHON) -m repro.experiments profile dkip mcf \
	  --instructions 4000 --profile-out profile.pstats

# The sweep service end to end: submit a 2x2 grid into a spool, drain
# it with a scheduler plus two worker processes, then resubmit the
# identical grid — the warm pass must complete the job with zero
# simulations off the shared store.  The same check gates in CI.
SERVE_SMOKE_GRID = --machines "r10(rob=32),dkip(llib=4096)" \
  --workloads "mcf,swim" --scale quick --instructions 2000 \
  --service .serve-svc --shards 2
serve-smoke:
	rm -rf .serve-svc
	PYTHONPATH=src $(PYTHON) -m repro.experiments submit $(SERVE_SMOKE_GRID)
	PYTHONPATH=src $(PYTHON) -m repro.experiments serve \
	  --service .serve-svc --workers 2 --once
	PYTHONPATH=src $(PYTHON) -m repro.experiments submit $(SERVE_SMOKE_GRID)
	PYTHONPATH=src $(PYTHON) -m repro.experiments serve \
	  --service .serve-svc --workers 2 --once | grep ", 0 simulated"
	PYTHONPATH=src $(PYTHON) -m repro.experiments status --service .serve-svc

# Regenerate every paper table/figure at quick scale.
experiments:
	PYTHONPATH=src $(PYTHON) -m repro.experiments all --scale quick

# Build REPRODUCTION.md: every registered figure as embedded SVG with a
# reproduced-vs-paper verdict.  Cells cache in .repro-store, so the
# first run simulates (~half a minute) and re-runs render in under 5s.
reproduce:
	PYTHONPATH=src $(PYTHON) -m repro.experiments report --scale quick --store .repro-store --out REPRODUCTION.md
