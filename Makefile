# Convenience targets; everything assumes the in-repo source layout and
# sets PYTHONPATH accordingly.

PYTHON ?= python

.PHONY: test bench bench-baseline experiments

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Opt-in benchmark regression gate: runs the simulator-throughput
# pytest-benchmark group and fails on >25% mean-time regressions against
# benchmarks/BENCH_baseline.json.
bench:
	$(PYTHON) benchmarks/compare.py

# Refresh the committed baseline after an intentional performance change.
bench-baseline:
	$(PYTHON) benchmarks/compare.py --update

# Regenerate every paper table/figure at quick scale.
experiments:
	PYTHONPATH=src $(PYTHON) -m repro.experiments all --scale quick
